//! State deltas: which nodes flipped between two states, and which edge
//! costs can differ because of it.
//!
//! The series workloads (anomaly detection, prediction) compare
//! *consecutive* snapshots of one evolving network; a simulation step
//! typically flips a handful of opinions out of thousands. Everything the
//! ground geometry derives from a state — edge costs, SSSP rows, cluster
//! distances — changes only near those flips, so the delta-aware
//! evaluation path (`snd-core`) rebuilds per-state quantities
//! incrementally instead of from scratch.
//!
//! [`StateDelta::between`] computes the flipped node set and a **touched
//! edge set**: a superset of the edges whose cost can differ between the
//! two states for *any* opinion under *any* supported spreading model.
//! The locality contract per model:
//!
//! * **Agnostic** — `cost(u→v)` depends only on the endpoint stances, so a
//!   flip at `x` touches `in(x) ∪ out(x)`.
//! * **ICC / LTC** — `cost(u→v)` additionally depends on a receiver-side
//!   aggregate over `v`'s *active* in-neighbors (the ICC front
//!   distance/mass, the LTC Ω_in). The aggregate is a function of which
//!   in-neighbors are active, not of their polarity, so it shifts only
//!   when a flip at `x` changes `x`'s activity status — in which case
//!   every in-edge of every out-neighbor of `x` is touched as well.
//!
//! [`update_edge_costs`] then re-derives the cost of exactly the touched
//! edges under the new state, in place, reproducing
//! [`edge_costs`](crate::edge_costs) **bit for bit** (the per-edge kernels
//! and the receiver-side aggregates are shared with the full sweep, so
//! even the floating-point summation order matches). The property tests
//! below assert this for all three spreading models.

use snd_graph::{CsrGraph, EdgeId, NodeId};

use crate::ground::{prob_to_cost, GroundCostConfig, SpreadingModel};
use crate::state::{NetworkState, Opinion};

/// The difference between two network states over one graph: flipped
/// nodes plus the edges whose ground cost may differ (for any opinion).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StateDelta {
    flipped: Vec<NodeId>,
    touched_edges: Vec<EdgeId>,
}

impl StateDelta {
    /// Computes the delta from `a` to `b`. `O(n + Σ deg(flipped) +
    /// Σ in-deg(out-neighbors of activity flips))`.
    pub fn between(g: &CsrGraph, a: &NetworkState, b: &NetworkState) -> Self {
        assert_eq!(a.len(), g.node_count(), "state/graph size mismatch");
        assert_eq!(b.len(), g.node_count(), "state/graph size mismatch");
        let mut flipped = Vec::new();
        for u in 0..g.node_count() as NodeId {
            if a.opinion(u) != b.opinion(u) {
                flipped.push(u);
            }
        }
        let mut touched: Vec<EdgeId> = Vec::new();
        for &x in &flipped {
            touched.extend(g.out_edges(x).map(|(e, _)| e));
            touched.extend(g.in_edges(x).map(|(e, _)| e));
            // Activity change ⇒ receiver-side aggregates (ICC front, LTC
            // Ω_in) shift at every out-neighbor: all their in-edges are
            // suspect.
            if a.opinion(x).is_active() != b.opinion(x).is_active() {
                for &v in g.out_neighbors(x) {
                    touched.extend(g.in_edges(v).map(|(e, _)| e));
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        StateDelta {
            flipped,
            touched_edges: touched,
        }
    }

    /// Computes the delta from `anchor` to `anchor ⊕ flips` without ever
    /// materializing the flipped state. `flips` is a candidate flip-list:
    /// `(node, new opinion)` entries in any order, later entries winning on
    /// duplicate nodes, entries equal to the anchor opinion ignored. The
    /// result — flipped set and touched-edge set alike — is identical to
    /// `StateDelta::between(g, anchor, b)` where `b` is `anchor` with the
    /// flips applied. `O(Σ deg(flips))` instead of `O(n + …)`: the
    /// candidate-search workloads price hundreds of flip-lists against one
    /// anchor and must not pay a full-state scan (or clone) per candidate.
    pub fn from_flips(g: &CsrGraph, anchor: &NetworkState, flips: &[(NodeId, Opinion)]) -> Self {
        assert_eq!(anchor.len(), g.node_count(), "state/graph size mismatch");
        let flips = normalize_flips(anchor, flips);
        let mut touched: Vec<EdgeId> = Vec::new();
        let mut flipped = Vec::with_capacity(flips.len());
        for &(x, op) in &flips {
            flipped.push(x);
            touched.extend(g.out_edges(x).map(|(e, _)| e));
            touched.extend(g.in_edges(x).map(|(e, _)| e));
            // Same receiver-side rule as `between`: an activity change
            // spills to every in-edge of every out-neighbor.
            if anchor.opinion(x).is_active() != op.is_active() {
                for &v in g.out_neighbors(x) {
                    touched.extend(g.in_edges(v).map(|(e, _)| e));
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        StateDelta {
            flipped,
            touched_edges: touched,
        }
    }

    /// True when the two states are identical (nothing to reprice).
    pub fn is_empty(&self) -> bool {
        self.flipped.is_empty()
    }

    /// Nodes whose opinion differs, ascending.
    pub fn flipped(&self) -> &[NodeId] {
        &self.flipped
    }

    /// Edges whose ground cost may differ, ascending and deduplicated — a
    /// superset of the actually-changed edges for every opinion and
    /// spreading model.
    pub fn touched_edges(&self) -> &[EdgeId] {
        &self.touched_edges
    }
}

/// Normalizes a candidate flip-list against its anchor: sorted by node
/// ascending, duplicate nodes resolved last-wins, entries equal to the
/// anchor's opinion dropped. The result is the canonical set of real
/// changes — exactly the `flipped()` set (with new opinions attached) of
/// the state the flips describe.
pub fn normalize_flips(
    anchor: &NetworkState,
    flips: &[(NodeId, Opinion)],
) -> Vec<(NodeId, Opinion)> {
    let mut out: Vec<(usize, NodeId, Opinion)> = flips
        .iter()
        .enumerate()
        .map(|(i, &(u, op))| (i, u, op))
        .collect();
    // Stable order by node; among duplicates the *latest* entry wins.
    out.sort_by_key(|&(i, u, _)| (u, i));
    let mut dedup: Vec<(NodeId, Opinion)> = Vec::with_capacity(out.len());
    for (_, u, op) in out {
        match dedup.last_mut() {
            Some(last) if last.0 == u => last.1 = op,
            _ => dedup.push((u, op)),
        }
    }
    dedup.retain(|&(u, op)| anchor.opinion(u) != op);
    dedup
}

/// Applies a flip-list to a state, returning the flipped copy (last entry
/// wins on duplicate nodes). The materializing counterpart of
/// [`StateDelta::from_flips`] — used where a real [`NetworkState`] is
/// unavoidable (simulation rollouts, reference-path comparisons).
pub fn apply_flips(anchor: &NetworkState, flips: &[(NodeId, Opinion)]) -> NetworkState {
    let mut s = anchor.clone();
    for &(u, op) in flips {
        s.set(u, op);
    }
    s
}

/// The flip-list carrying `anchor` to `target`: every differing node with
/// its `target` opinion, ascending. The inverse of [`apply_flips`] —
/// `apply_flips(anchor, &flips_between(anchor, target)) == target`.
pub fn flips_between(anchor: &NetworkState, target: &NetworkState) -> Vec<(NodeId, Opinion)> {
    assert_eq!(anchor.len(), target.len(), "state size mismatch");
    (0..anchor.len() as NodeId)
        .filter(|&u| anchor.opinion(u) != target.opinion(u))
        .map(|u| (u, target.opinion(u)))
        .collect()
}

/// Re-derives the cost of the `touched` edges for `(state, op)` in place,
/// leaving every other entry untouched. Given costs valid for a state `a`
/// and the touched set of `StateDelta::between(g, a, state)`, the result
/// is bit-identical to `edge_costs(g, state, op, config)`.
pub fn update_edge_costs(
    g: &CsrGraph,
    state: &NetworkState,
    op: Opinion,
    config: &GroundCostConfig,
    touched: &[EdgeId],
    costs: &mut [u32],
) {
    assert!(op.is_active(), "ground costs require a polar opinion");
    assert_eq!(state.len(), g.node_count(), "state/graph size mismatch");
    assert_eq!(costs.len(), g.edge_count(), "one cost per edge");

    // Receiver-side aggregates are shared by every touched edge pointing
    // at the same node; memoize them per receiver.
    let mut agg: std::collections::HashMap<NodeId, (u32, f64)> = std::collections::HashMap::new();
    for &e in touched {
        let u = g.edge_source(e);
        let v = g.edge_target(e);
        let spread = match &config.spreading {
            SpreadingModel::Agnostic(p) => {
                crate::agnostic::edge_penalty(state.opinion(u), state.opinion(v), op, p)
            }
            SpreadingModel::Icc(p) => {
                let &mut (fd, fp) = agg
                    .entry(v)
                    .or_insert_with(|| crate::icc::front_at(g, state, p, v));
                let prob = crate::icc::edge_probability(g, state, op, p, e, u, v, fd, fp);
                prob_to_cost(prob, config.epsilon, config.span)
            }
            SpreadingModel::Ltc(p) => {
                let &mut (_, omega) = agg
                    .entry(v)
                    .or_insert_with(|| (0, crate::ltc::omega_at(g, state, p, v)));
                let prob = crate::ltc::edge_probability(g, state, op, p, e, u, v, omega);
                prob_to_cost(prob, config.epsilon, config.span)
            }
        };
        let comm = config.communication.as_ref().map_or(1, |c| c[e as usize]);
        let adopt = config.adoption.as_ref().map_or(0, |c| c[e as usize]);
        costs[e as usize] = comm.saturating_add(adopt).saturating_add(spread).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agnostic::AgnosticPenalties;
    use crate::edge_costs;
    use crate::icc::{EdgeActivation, IccParams};
    use crate::ltc::{EdgeWeights, LtcParams};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use snd_graph::generators;

    fn random_state(n: usize, rng: &mut SmallRng) -> NetworkState {
        NetworkState::from_values(&(0..n).map(|_| rng.gen_range(-1..=1)).collect::<Vec<i8>>())
    }

    /// Flip a few random nodes of `a`.
    fn flip_some(a: &NetworkState, count: usize, rng: &mut SmallRng) -> NetworkState {
        let mut b = a.clone();
        for _ in 0..count {
            let u = rng.gen_range(0..a.len() as NodeId);
            let cur = b.opinion(u).value();
            let mut next = rng.gen_range(-1..=1);
            if next == cur {
                next = if cur == 1 { -1 } else { cur + 1 };
            }
            b.set(u, Opinion::from_value(next));
        }
        b
    }

    fn configs(g: &CsrGraph) -> Vec<GroundCostConfig> {
        vec![
            GroundCostConfig::default(),
            GroundCostConfig {
                spreading: SpreadingModel::Agnostic(AgnosticPenalties::new(1, 4, 9)),
                communication: Some(vec![3; g.edge_count()]),
                adoption: Some(vec![2; g.edge_count()]),
                ..Default::default()
            },
            GroundCostConfig::with_model(SpreadingModel::Icc(IccParams::default())),
            GroundCostConfig::with_model(SpreadingModel::Icc(IccParams {
                activation: EdgeActivation::Uniform(0.3),
                distances: Some((0..g.edge_count()).map(|e| 1 + (e as u32 % 3)).collect()),
                epsilon: 1e-6,
            })),
            GroundCostConfig::with_model(SpreadingModel::Ltc(LtcParams::default())),
            GroundCostConfig::with_model(SpreadingModel::Ltc(LtcParams {
                weights: EdgeWeights::Uniform(0.2),
                thresholds: None,
                epsilon: 1e-5,
            })),
        ]
    }

    #[test]
    fn touched_edge_update_matches_full_recompute_for_every_model() {
        let mut rng = SmallRng::seed_from_u64(77);
        for trial in 0..30 {
            let n = 6 + trial % 20;
            let g = generators::erdos_renyi_gnp(n, 0.25, true, &mut rng);
            let a = random_state(n, &mut rng);
            let b = flip_some(&a, 1 + trial % 4, &mut rng);
            let delta = StateDelta::between(&g, &a, &b);
            for config in configs(&g) {
                for op in [Opinion::Positive, Opinion::Negative] {
                    let mut costs = edge_costs(&g, &a, op, &config);
                    update_edge_costs(&g, &b, op, &config, delta.touched_edges(), &mut costs);
                    let full = edge_costs(&g, &b, op, &config);
                    assert_eq!(
                        costs, full,
                        "trial {trial}, op {op:?}, config {:?}",
                        config.spreading
                    );
                }
            }
        }
    }

    #[test]
    fn from_flips_matches_between_on_random_flip_lists() {
        // The compact flip-list constructor must agree with `between`
        // applied to the materialized state — flipped set and touched-edge
        // set alike — including messy inputs: unsorted, duplicated
        // (last-wins), and containing no-op entries.
        let mut rng = SmallRng::seed_from_u64(2024);
        for trial in 0..40 {
            let n = 5 + trial % 18;
            let g = generators::erdos_renyi_gnp(n, 0.3, true, &mut rng);
            let anchor = random_state(n, &mut rng);
            let mut flips: Vec<(NodeId, Opinion)> = (0..1 + trial % 5)
                .map(|_| {
                    let u = rng.gen_range(0..n as NodeId);
                    (u, Opinion::from_value(rng.gen_range(-1..=1)))
                })
                .collect();
            if trial % 3 == 0 {
                // Duplicate a node with a different opinion: last wins.
                let (u, op) = flips[0];
                flips.push((u, op.opposite()));
            }
            if trial % 4 == 0 {
                // Explicit no-op entry: same opinion as the anchor.
                let u = rng.gen_range(0..n as NodeId);
                flips.push((u, anchor.opinion(u)));
            }
            let applied = apply_flips(&anchor, &flips);
            let via_flips = StateDelta::from_flips(&g, &anchor, &flips);
            let via_between = StateDelta::between(&g, &anchor, &applied);
            assert_eq!(via_flips, via_between, "trial {trial}");
        }
    }

    #[test]
    fn normalize_flips_is_last_wins_and_drops_noops() {
        let anchor = NetworkState::from_values(&[1, 0, -1]);
        let flips = vec![
            (2, Opinion::Positive),
            (0, Opinion::Positive), // no-op: anchor already positive
            (2, Opinion::Neutral),  // overrides the first entry for node 2
            (1, Opinion::Negative),
        ];
        let norm = normalize_flips(&anchor, &flips);
        assert_eq!(
            norm,
            vec![(1, Opinion::Negative), (2, Opinion::Neutral)],
            "ascending, last-wins, no-ops dropped"
        );
    }

    #[test]
    fn empty_delta_between_identical_states() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::erdos_renyi_gnp(10, 0.3, true, &mut rng);
        let a = random_state(10, &mut rng);
        let delta = StateDelta::between(&g, &a, &a.clone());
        assert!(delta.is_empty());
        assert!(delta.flipped().is_empty());
        assert!(delta.touched_edges().is_empty());
    }

    #[test]
    fn polar_flip_touches_only_incident_edges() {
        // 0 -> 1 -> 2: flipping node 0 between + and − (activity
        // unchanged) must not touch edge 1->2 — receiver aggregates only
        // see activity, not polarity.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let a = NetworkState::from_values(&[1, 1, 0]);
        let b = NetworkState::from_values(&[-1, 1, 0]);
        let delta = StateDelta::between(&g, &a, &b);
        assert_eq!(delta.flipped(), &[0]);
        assert_eq!(delta.touched_edges(), &[g.find_edge(0, 1).unwrap()]);
    }

    #[test]
    fn activity_flip_touches_sibling_in_edges() {
        // 0 -> 2, 1 -> 2: node 0 going neutral shifts the aggregate at 2,
        // so the sibling edge 1 -> 2 is touched too.
        let g = CsrGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let a = NetworkState::from_values(&[1, 1, 0]);
        let b = NetworkState::from_values(&[0, 1, 0]);
        let delta = StateDelta::between(&g, &a, &b);
        let mut expect = vec![g.find_edge(0, 2).unwrap(), g.find_edge(1, 2).unwrap()];
        expect.sort_unstable();
        assert_eq!(delta.touched_edges(), expect.as_slice());
    }
}
