//! Ground-distance edge costs: the quantized `A_ext` matrix of Eq. 2.
//!
//! Every edge `(u, v)` is assigned a positive integer cost
//!
//! ```text
//! cost(u, v) = comm(u, v) + adopt(u, v) + spread(u, v | G, op)
//! ```
//!
//! * `comm` — communication penalty `−log P`. Without observed communication
//!   frequencies this is the connectivity matrix (1 per edge), penalizing
//!   topological remoteness exactly as the paper prescribes.
//! * `adopt` — adoption penalty `−log Pin`. With no susceptibility data all
//!   users are non-stubborn (`Pin = 1`, penalty 0).
//! * `spread` — spreading penalty `−log Pout`, the model-dependent part:
//!   [`SpreadingModel::Agnostic`] constants, or probabilities from the ICC /
//!   LTC competition models quantized by [`prob_to_cost`].
//!
//! Quantization maps probabilities to `[0, span]` by
//! `round(ln p / ln ε · span)` with everything at or below `ε` clamped to
//! `span`, so total edge costs live in `[1, U]` with
//! `U = 1 + max_adopt + span` — the paper's Assumption 2 with explicit `U`.

use snd_graph::CsrGraph;

use crate::agnostic::AgnosticPenalties;
use crate::icc::IccParams;
use crate::ltc::LtcParams;
use crate::state::{NetworkState, Opinion};

/// Spreading-penalty model (`Pout` of Eq. 2).
#[derive(Clone, Debug)]
pub enum SpreadingModel {
    /// Constant penalties by the spreader's stance relative to `op` (§3).
    Agnostic(AgnosticPenalties),
    /// Independent Cascade with Competition (Carnes et al.).
    Icc(IccParams),
    /// Linear Threshold with Competition (Borodin et al.).
    Ltc(LtcParams),
}

/// Configuration for ground-cost construction.
#[derive(Clone, Debug)]
pub struct GroundCostConfig {
    /// Spreading model.
    pub spreading: SpreadingModel,
    /// Per-edge communication penalties (`−log P`); `None` = connectivity
    /// matrix (1 per edge).
    pub communication: Option<Vec<u32>>,
    /// Per-edge adoption penalties (`−log Pin`); `None` = non-stubborn
    /// users (0 per edge).
    pub adoption: Option<Vec<u32>>,
    /// Probability-quantization span: `Pout = ε` maps to this many cost
    /// units (see [`prob_to_cost`]).
    pub span: u32,
    /// The ε probability assigned to events a model posits as impossible,
    /// so every pair of network states stays at a finite distance (§3).
    pub epsilon: f64,
}

impl Default for GroundCostConfig {
    fn default() -> Self {
        GroundCostConfig {
            spreading: SpreadingModel::Agnostic(AgnosticPenalties::default()),
            communication: None,
            adoption: None,
            span: 59,
            epsilon: 1e-6,
        }
    }
}

impl GroundCostConfig {
    /// Config with the given spreading model and defaults elsewhere.
    pub fn with_model(spreading: SpreadingModel) -> Self {
        GroundCostConfig {
            spreading,
            ..Default::default()
        }
    }

    /// Upper bound `U` on any edge cost this config can produce
    /// (Assumption 2).
    pub fn max_edge_cost(&self) -> u32 {
        let comm = self
            .communication
            .as_ref()
            .map_or(1, |c| c.iter().copied().max().unwrap_or(1));
        let adopt = self
            .adoption
            .as_ref()
            .map_or(0, |c| c.iter().copied().max().unwrap_or(0));
        let spread = match &self.spreading {
            SpreadingModel::Agnostic(p) => p.max_penalty(),
            SpreadingModel::Icc(_) | SpreadingModel::Ltc(_) => self.span,
        };
        comm + adopt + spread
    }
}

/// Quantizes a spreading probability into `[0, span]` cost units:
/// `p ≥ 1 → 0`, `p ≤ ε → span`, log-linear in between.
pub fn prob_to_cost(p: f64, epsilon: f64, span: u32) -> u32 {
    debug_assert!(epsilon > 0.0 && epsilon < 1.0);
    if p >= 1.0 {
        return 0;
    }
    if p <= epsilon {
        return span;
    }
    let frac = p.ln() / epsilon.ln(); // in (0, 1)
    (frac * span as f64).round() as u32
}

/// Builds the integer edge-cost vector (aligned with the graph's forward
/// edge ids) for propagating opinion `op` through network state `state` —
/// the quantized `A_ext(G, op)` of Eq. 2 restricted to existing edges.
pub fn edge_costs(
    g: &CsrGraph,
    state: &NetworkState,
    op: Opinion,
    config: &GroundCostConfig,
) -> Vec<u32> {
    assert!(op.is_active(), "ground costs require a polar opinion");
    assert_eq!(state.len(), g.node_count(), "state/graph size mismatch");
    if let Some(c) = &config.communication {
        assert_eq!(c.len(), g.edge_count(), "communication penalties per edge");
    }
    if let Some(c) = &config.adoption {
        assert_eq!(c.len(), g.edge_count(), "adoption penalties per edge");
    }

    let spread = match &config.spreading {
        SpreadingModel::Agnostic(p) => crate::agnostic::spreading_costs(g, state, op, p),
        SpreadingModel::Icc(p) => {
            let probs = crate::icc::spreading_probabilities(g, state, op, p);
            probs
                .into_iter()
                .map(|pr| prob_to_cost(pr, config.epsilon, config.span))
                .collect()
        }
        SpreadingModel::Ltc(p) => {
            let probs = crate::ltc::spreading_probabilities(g, state, op, p);
            probs
                .into_iter()
                .map(|pr| prob_to_cost(pr, config.epsilon, config.span))
                .collect()
        }
    };

    let mut costs = Vec::with_capacity(g.edge_count());
    for e in 0..g.edge_count() {
        let comm = config.communication.as_ref().map_or(1, |c| c[e]);
        let adopt = config.adoption.as_ref().map_or(0, |c| c[e]);
        costs.push(comm.saturating_add(adopt).saturating_add(spread[e]).max(1));
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;
    use snd_graph::generators::path_graph;

    #[test]
    fn prob_to_cost_endpoints() {
        assert_eq!(prob_to_cost(1.0, 1e-6, 59), 0);
        assert_eq!(prob_to_cost(2.0, 1e-6, 59), 0);
        assert_eq!(prob_to_cost(1e-6, 1e-6, 59), 59);
        assert_eq!(prob_to_cost(0.0, 1e-6, 59), 59);
        let mid = prob_to_cost(1e-3, 1e-6, 58);
        assert_eq!(mid, 29); // half the log range
    }

    #[test]
    fn prob_to_cost_monotone() {
        let probs = [1.0, 0.5, 0.1, 0.01, 1e-4, 1e-6];
        let costs: Vec<u32> = probs.iter().map(|&p| prob_to_cost(p, 1e-6, 59)).collect();
        for w in costs.windows(2) {
            assert!(w[0] <= w[1], "quantization must be monotone: {costs:?}");
        }
    }

    #[test]
    fn default_costs_are_positive_and_bounded() {
        let g = path_graph(5);
        let state = NetworkState::from_values(&[1, 0, -1, 0, 1]);
        let config = GroundCostConfig::default();
        let costs = edge_costs(&g, &state, Opinion::Positive, &config);
        assert_eq!(costs.len(), g.edge_count());
        let u = config.max_edge_cost();
        for &c in &costs {
            assert!(c >= 1 && c <= u, "cost {c} outside [1, {u}]");
        }
    }

    #[test]
    fn custom_communication_penalties_add_up() {
        let g = path_graph(3);
        let state = NetworkState::new_neutral(3);
        let comm = vec![7u32; g.edge_count()];
        let config = GroundCostConfig {
            communication: Some(comm),
            ..Default::default()
        };
        let costs = edge_costs(&g, &state, Opinion::Positive, &config);
        // Neutral spreader penalty (default 5) + comm 7.
        let expected = 7 + AgnosticPenalties::default().neutral;
        assert!(costs.iter().all(|&c| c == expected), "{costs:?}");
    }
}
