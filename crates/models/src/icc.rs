//! Independent Cascade with Competition (Carnes et al.) spreading
//! probabilities (§3).
//!
//! In the distance-based ICC model every edge carries an activation
//! probability `p_uv` and a distance `d_uv`; a user adopts the opinion of
//! the *nearest* active influencers, weighted by activation probabilities.
//! The spreading probability of edge `(u, v)` for opinion `op` in state `G`
//! is:
//!
//! ```text
//! Pout(u→v) = 0                    if d_v({u}) > d_v(I)     (u not nearest)
//!             1                    if G[u] = op ∧ G[v] = op
//!             max(0, p_uv − ε)/pᵃ  if G[u] = op ∧ G[v] = 0
//!             ε                    otherwise
//! ```
//!
//! where `d_v(I)` is the distance from the active set to `v` and `pᵃ(G, v)`
//! sums `p_uv` over active front users. Following the paper's §3 remark, all
//! "impossible" events (the `0` branch included) receive probability `ε` so
//! distances stay finite.
//!
//! **Clarification (documented in DESIGN.md):** the paper writes `d_v({u})`
//! as a set-to-node shortest-path distance; evaluating it exactly for every
//! edge would require an SSSP per edge. We evaluate the edge-local variant —
//! `d_v({u}) = d_uv` for in-neighbor edges and `d_v(I) = min` over *active
//! in-neighbors* — which preserves the model's competition semantics (only
//! the nearest active influencers matter, proportionally to `p_uv`) at
//! `O(m)` total cost.

use snd_graph::CsrGraph;

use crate::error::ModelError;
use crate::state::{NetworkState, Opinion};

/// Per-edge activation probabilities.
#[derive(Clone, Debug)]
pub enum EdgeActivation {
    /// Same probability on every edge.
    Uniform(f64),
    /// Weighted-cascade convention: `p_uv = 1 / in_degree(v)`.
    WeightedCascade,
    /// Explicit per-edge probabilities (aligned with forward edge ids),
    /// e.g. learned from observed data.
    PerEdge(Vec<f64>),
}

/// ICC model parameters.
#[derive(Clone, Debug)]
pub struct IccParams {
    /// Edge activation probabilities `p_uv`.
    pub activation: EdgeActivation,
    /// Edge distances `d_uv`; `None` = unit distances.
    pub distances: Option<Vec<u32>>,
    /// Probability of model-impossible events.
    pub epsilon: f64,
}

impl Default for IccParams {
    fn default() -> Self {
        IccParams {
            activation: EdgeActivation::WeightedCascade,
            distances: None,
            epsilon: 1e-6,
        }
    }
}

impl IccParams {
    /// Validating constructor: checks every probability-like parameter and
    /// per-edge vector length against `g` so a malformed configuration
    /// surfaces as a [`ModelError`] instead of a mid-simulation panic.
    pub fn for_graph(
        g: &CsrGraph,
        activation: EdgeActivation,
        distances: Option<Vec<u32>>,
        epsilon: f64,
    ) -> Result<Self, ModelError> {
        crate::error::probability("epsilon", epsilon)?;
        match &activation {
            EdgeActivation::Uniform(p) => {
                crate::error::probability("activation probability", *p)?;
            }
            EdgeActivation::PerEdge(p) => {
                if p.len() != g.edge_count() {
                    return Err(ModelError::LengthMismatch {
                        what: "per-edge activation probabilities",
                        expected: g.edge_count(),
                        got: p.len(),
                    });
                }
                for &pi in p {
                    crate::error::probability("activation probability", pi)?;
                }
            }
            EdgeActivation::WeightedCascade => {}
        }
        if let Some(d) = &distances {
            if d.len() != g.edge_count() {
                return Err(ModelError::LengthMismatch {
                    what: "per-edge distances",
                    expected: g.edge_count(),
                    got: d.len(),
                });
            }
        }
        Ok(IccParams {
            activation,
            distances,
            epsilon,
        })
    }

    /// Activation probability of edge `e = (u, v)`.
    pub fn activation_of(&self, g: &CsrGraph, e: u32, v: u32) -> f64 {
        match &self.activation {
            EdgeActivation::Uniform(p) => *p,
            EdgeActivation::WeightedCascade => {
                let deg = g.in_degree(v);
                if deg == 0 {
                    0.0
                } else {
                    1.0 / deg as f64
                }
            }
            EdgeActivation::PerEdge(p) => p[e as usize],
        }
    }

    /// Distance of edge `e`.
    pub fn distance_of(&self, e: u32) -> u32 {
        self.distances.as_ref().map_or(1, |d| d[e as usize])
    }
}

/// The active front at node `v`: distance of the nearest active
/// in-neighbor and the total activation-probability mass at that distance.
/// Iterates `v`'s in-edges in edge order, so the floating-point sum is
/// reproducible — the delta path (`crate::delta`) recomputes exactly this
/// per touched receiver and must match the full sweep bit for bit.
pub(crate) fn front_at(
    g: &CsrGraph,
    state: &NetworkState,
    params: &IccParams,
    v: u32,
) -> (u32, f64) {
    let mut dist = u32::MAX;
    for (e, u) in g.in_edges(v) {
        if state.opinion(u).is_active() {
            let d = params.distance_of(e);
            if d < dist {
                dist = d;
            }
        }
    }
    let mut prob = 0.0f64;
    for (e, u) in g.in_edges(v) {
        if state.opinion(u).is_active() && params.distance_of(e) == dist {
            prob += params.activation_of(g, e, v);
        }
    }
    (dist, prob)
}

/// Spreading probability of one edge `e = (u, v)` given `v`'s active front
/// — the single-edge kernel shared by [`spreading_probabilities`] and the
/// delta path.
#[allow(clippy::too_many_arguments)] // mirrors the per-edge model inputs
pub(crate) fn edge_probability(
    g: &CsrGraph,
    state: &NetworkState,
    op: Opinion,
    params: &IccParams,
    e: u32,
    u: u32,
    v: u32,
    front_dist: u32,
    front_prob: f64,
) -> f64 {
    let eps = params.epsilon;
    let gu = state.opinion(u);
    let gv = state.opinion(v);
    let p = if gu == op && gv == op {
        1.0
    } else if gu == op && gv == Opinion::Neutral {
        // Only nearest-front influencers can activate v.
        if params.distance_of(e) > front_dist {
            eps
        } else {
            let puv = params.activation_of(g, e, v);
            if front_prob > 0.0 {
                ((puv - eps).max(0.0) / front_prob).min(1.0)
            } else {
                eps
            }
        }
    } else {
        eps
    };
    p.max(eps)
}

/// Spreading probabilities per edge for opinion `op` in state `state`.
pub fn spreading_probabilities(
    g: &CsrGraph,
    state: &NetworkState,
    op: Opinion,
    params: &IccParams,
) -> Vec<f64> {
    if let EdgeActivation::PerEdge(p) = &params.activation {
        assert_eq!(p.len(), g.edge_count(), "activation probabilities per edge");
    }
    if let Some(d) = &params.distances {
        assert_eq!(d.len(), g.edge_count(), "distances per edge");
    }

    // Per node v: the distance of the nearest active in-neighbor (front
    // distance) and the total activation probability mass of the front.
    let n = g.node_count();
    let mut front_dist = vec![u32::MAX; n];
    let mut front_prob = vec![0.0f64; n];
    for v in g.nodes() {
        let (d, p) = front_at(g, state, params, v);
        front_dist[v as usize] = d;
        front_prob[v as usize] = p;
    }

    let mut probs = Vec::with_capacity(g.edge_count());
    let mut edge_id = 0u32;
    for u in g.nodes() {
        for &v in g.out_neighbors(u) {
            probs.push(edge_probability(
                g,
                state,
                op,
                params,
                edge_id,
                u,
                v,
                front_dist[v as usize],
                front_prob[v as usize],
            ));
            edge_id += 1;
        }
    }
    probs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_to_active_same_opinion_is_certain() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let state = NetworkState::from_values(&[1, 1]);
        let p = spreading_probabilities(&g, &state, Opinion::Positive, &IccParams::default());
        assert_eq!(p[0], 1.0);
    }

    #[test]
    fn competition_splits_activation_mass() {
        // Two active users (one +, one −) both point at neutral node 2 with
        // uniform activation 0.4: each front edge gets (0.4 − ε)/0.8 ≈ 0.5.
        let g = CsrGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let state = NetworkState::from_values(&[1, -1, 0]);
        let params = IccParams {
            activation: EdgeActivation::Uniform(0.4),
            ..Default::default()
        };
        let p = spreading_probabilities(&g, &state, Opinion::Positive, &params);
        let e02 = g.find_edge(0, 2).unwrap() as usize;
        let e12 = g.find_edge(1, 2).unwrap() as usize;
        assert!((p[e02] - 0.5).abs() < 1e-3, "{}", p[e02]);
        // Edge from the adverse spreader gets ε.
        assert!(p[e12] <= 1e-6);
    }

    #[test]
    fn farther_influencers_are_cut_off() {
        // Node 2 has active in-neighbors at distances 1 (node 0) and 3
        // (node 1); only node 0 is on the front.
        let g = CsrGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let state = NetworkState::from_values(&[1, 1, 0]);
        let mut dist = vec![0u32; g.edge_count()];
        dist[g.find_edge(0, 2).unwrap() as usize] = 1;
        dist[g.find_edge(1, 2).unwrap() as usize] = 3;
        let params = IccParams {
            activation: EdgeActivation::Uniform(0.5),
            distances: Some(dist),
            epsilon: 1e-6,
        };
        let p = spreading_probabilities(&g, &state, Opinion::Positive, &params);
        let near = p[g.find_edge(0, 2).unwrap() as usize];
        let far = p[g.find_edge(1, 2).unwrap() as usize];
        assert!(near > 0.9, "front edge should carry the mass: {near}");
        assert!(far <= 1e-6, "off-front edge must be ε: {far}");
    }

    #[test]
    fn neutral_spreaders_get_epsilon() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let state = NetworkState::from_values(&[0, 0]);
        let p = spreading_probabilities(&g, &state, Opinion::Positive, &IccParams::default());
        assert!(p[0] <= 1e-6);
    }

    #[test]
    fn weighted_cascade_uses_in_degree() {
        let g = CsrGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let params = IccParams::default();
        let e = g.find_edge(0, 2).unwrap();
        assert!((params.activation_of(&g, e, 2) - 0.5).abs() < 1e-12);
    }
}
