//! The unified opinion-dynamics engine: one trait, many models.
//!
//! [`OpinionDynamics`] abstracts a forward simulator of polar opinion
//! dynamics as a *transition kernel*: given the graph and the current
//! [`NetworkState`], advance one step using a caller-provided RNG. Every
//! model the evaluation exercises — the paper's probabilistic voting, the
//! ICC/LTC cascades, structure-oblivious random activation, and the
//! polar-opinion models from the wider literature (majority rule, stubborn
//! voters, thresholded DeGroot/Friedkin–Johnsen, bounded confidence) — is a
//! small struct implementing this trait, so scenario generators, the CLI,
//! and benches drive *any* model through the same loop.
//!
//! Two contracts every implementation upholds:
//!
//! * **Determinism per seed** — a step is a pure function of `(graph,
//!   state, rng stream)`; running a model twice from the same seed yields
//!   bit-identical series (`tests/dynamics.rs`).
//! * **Bit-compatibility of ports** — the four models ported from the
//!   pre-trait free functions ([`Voting`], [`IndependentCascade`],
//!   [`LinearThreshold`], [`RandomActivation`]) consume the RNG stream
//!   exactly as the free functions do, so a fixed seed reproduces the
//!   pre-refactor series bit-for-bit (regression-tested).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use snd_graph::{CsrGraph, NodeId};

use crate::dynamics::{
    icc_step, lt_step, random_activation_step, voting_step, voting_step_sampled, VotingConfig,
};
use crate::error::{probability, ModelError};
use crate::icc::IccParams;
use crate::ltc::LtcParams;
use crate::state::{NetworkState, Opinion};

/// A forward model of polar opinion dynamics: a named, introspectable
/// transition kernel over [`NetworkState`]s.
///
/// The trait is object-safe (`Box<dyn OpinionDynamics>`), which is what
/// lets the scenario registry compose graph generators, seedings, and
/// models at runtime. RNG access goes through `&mut dyn RngCore`; a
/// deterministic model simply ignores it.
pub trait OpinionDynamics: Send + Sync {
    /// Short machine-friendly model name (e.g. `"voting"`), stable across
    /// releases — scenario names and bench records key off it.
    fn name(&self) -> &'static str;

    /// Parameter listing for logs and `snd simulate --list` output.
    fn params(&self) -> Vec<(&'static str, String)>;

    /// Advances `state` by one transition in place.
    fn step(&self, g: &CsrGraph, state: &mut NetworkState, rng: &mut dyn RngCore);
}

/// Runs `model` for `steps` transitions from `initial`, returning the full
/// series `G_0 … G_steps` (`steps + 1` states).
pub fn simulate_series(
    g: &CsrGraph,
    model: &dyn OpinionDynamics,
    initial: NetworkState,
    steps: usize,
    rng: &mut dyn RngCore,
) -> Vec<NetworkState> {
    let mut states = Vec::with_capacity(steps + 1);
    states.push(initial);
    for _ in 0..steps {
        let mut next = states.last().expect("series starts non-empty").clone();
        model.step(g, &mut next, rng);
        states.push(next);
    }
    states
}

// ---------------------------------------------------------------------------
// Ports of the pre-trait free functions (bit-identical per seed).
// ---------------------------------------------------------------------------

/// The paper's probabilistic-voting activation process (§6.1) as a model:
/// [`voting_step`], or [`voting_step_sampled`] when `chances` bounds the
/// number of users offered an activation chance per step.
#[derive(Clone, Debug)]
pub struct Voting {
    /// Activation probabilities.
    pub config: VotingConfig,
    /// `Some(k)`: only a uniform sample of `k` neutral users gets a chance
    /// per step (long-series mode); `None`: every neutral user does.
    pub chances: Option<usize>,
}

impl Voting {
    /// Full-sweep voting (every neutral user gets a chance each step).
    pub fn new(p_nbr: f64, p_ext: f64) -> Result<Self, ModelError> {
        Ok(Voting {
            config: VotingConfig::new(p_nbr, p_ext)?,
            chances: None,
        })
    }

    /// Sampled voting: `chances` neutral users get a chance per step.
    pub fn sampled(config: VotingConfig, chances: usize) -> Self {
        Voting {
            config,
            chances: Some(chances),
        }
    }
}

impl OpinionDynamics for Voting {
    fn name(&self) -> &'static str {
        "voting"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        let mut p = vec![
            ("p_nbr", format!("{}", self.config.p_nbr)),
            ("p_ext", format!("{}", self.config.p_ext)),
        ];
        if let Some(k) = self.chances {
            p.push(("chances", format!("{k}")));
        }
        p
    }

    fn step(&self, g: &CsrGraph, state: &mut NetworkState, mut rng: &mut dyn RngCore) {
        *state = match self.chances {
            Some(k) => voting_step_sampled(g, state, &self.config, k, &mut rng),
            None => voting_step(g, state, &self.config, &mut rng),
        };
    }
}

/// One ICC round per step ([`icc_step`]).
#[derive(Clone, Debug, Default)]
pub struct IndependentCascade {
    /// Cascade parameters.
    pub params: IccParams,
}

impl OpinionDynamics for IndependentCascade {
    fn name(&self) -> &'static str {
        "icc"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![
            ("activation", format!("{:?}", self.params.activation)),
            ("epsilon", format!("{}", self.params.epsilon)),
        ]
    }

    fn step(&self, g: &CsrGraph, state: &mut NetworkState, mut rng: &mut dyn RngCore) {
        *state = icc_step(g, state, &self.params, &mut rng);
    }
}

/// One LTC round per step ([`lt_step`]).
#[derive(Clone, Debug, Default)]
pub struct LinearThreshold {
    /// Threshold-model parameters.
    pub params: LtcParams,
}

impl OpinionDynamics for LinearThreshold {
    fn name(&self) -> &'static str {
        "ltc"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![
            ("weights", format!("{:?}", self.params.weights)),
            ("epsilon", format!("{}", self.params.epsilon)),
        ]
    }

    fn step(&self, g: &CsrGraph, state: &mut NetworkState, mut rng: &mut dyn RngCore) {
        *state = lt_step(g, state, &self.params, &mut rng);
    }
}

/// Structure-oblivious anomaly process: `count` uniformly random neutral
/// users activate with uniformly random opinions per step
/// ([`random_activation_step`], §6.4's anomalous transitions).
#[derive(Clone, Debug)]
pub struct RandomActivation {
    /// Users activated per step.
    pub count: usize,
}

impl OpinionDynamics for RandomActivation {
    fn name(&self) -> &'static str {
        "random-activation"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![("count", format!("{}", self.count))]
    }

    fn step(&self, g: &CsrGraph, state: &mut NetworkState, mut rng: &mut dyn RngCore) {
        *state = random_activation_step(g, state, self.count, &mut rng);
    }
}

// ---------------------------------------------------------------------------
// New polar-opinion models from the related literature.
// ---------------------------------------------------------------------------

/// Galam-style majority rule: a user who re-evaluates adopts the strict
/// majority opinion among her active in-neighbors; ties and empty
/// neighborhoods keep the current opinion. Unlike the cascade models,
/// majority rule can *flip* active users — it models opinion change, not
/// just adoption — which is what drives consensus formation.
#[derive(Clone, Debug)]
pub struct MajorityRule {
    /// Probability a user re-evaluates her opinion each step.
    pub update_prob: f64,
}

impl MajorityRule {
    /// Validating constructor.
    pub fn new(update_prob: f64) -> Result<Self, ModelError> {
        Ok(MajorityRule {
            update_prob: probability("update_prob", update_prob)?,
        })
    }
}

impl OpinionDynamics for MajorityRule {
    fn name(&self) -> &'static str {
        "majority-rule"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![("update_prob", format!("{}", self.update_prob))]
    }

    fn step(&self, g: &CsrGraph, state: &mut NetworkState, rng: &mut dyn RngCore) {
        let mut next = state.clone();
        for v in g.nodes() {
            if !rng.gen_bool(self.update_prob) {
                continue;
            }
            let mut pos = 0usize;
            let mut neg = 0usize;
            for &u in g.in_neighbors(v) {
                match state.opinion(u) {
                    Opinion::Positive => pos += 1,
                    Opinion::Negative => neg += 1,
                    Opinion::Neutral => {}
                }
            }
            if pos > neg {
                next.set(v, Opinion::Positive);
            } else if neg > pos {
                next.set(v, Opinion::Negative);
            }
        }
        *state = next;
    }
}

/// The voter model with curmudgeons: a non-stubborn user copies the opinion
/// (including neutrality) of a uniformly random in-neighbor; a fixed
/// stubborn subset never updates. Stubborn agents ("zealots") are the
/// classic mechanism that blocks consensus and sustains polarization.
#[derive(Clone, Debug)]
pub struct StubbornVoter {
    /// Probability a non-stubborn user copies a neighbor each step.
    pub copy_prob: f64,
    /// Fraction of users that never change opinion.
    pub stubborn_fraction: f64,
    /// Seed of the stubborn-set draw. Kept separate from the step RNG so
    /// the *same* users are stubborn at every step of a run, while two
    /// scenarios can disagree on who is stubborn.
    pub mask_seed: u64,
}

impl StubbornVoter {
    /// Validating constructor.
    pub fn new(copy_prob: f64, stubborn_fraction: f64, mask_seed: u64) -> Result<Self, ModelError> {
        Ok(StubbornVoter {
            copy_prob: probability("copy_prob", copy_prob)?,
            stubborn_fraction: probability("stubborn_fraction", stubborn_fraction)?,
            mask_seed,
        })
    }

    /// The fixed stubborn mask over `n` users.
    pub fn stubborn_mask(&self, n: usize) -> Vec<bool> {
        let mut rng = SmallRng::seed_from_u64(self.mask_seed);
        (0..n)
            .map(|_| rng.gen_bool(self.stubborn_fraction))
            .collect()
    }
}

impl OpinionDynamics for StubbornVoter {
    fn name(&self) -> &'static str {
        "stubborn-voter"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![
            ("copy_prob", format!("{}", self.copy_prob)),
            ("stubborn_fraction", format!("{}", self.stubborn_fraction)),
            ("mask_seed", format!("{}", self.mask_seed)),
        ]
    }

    fn step(&self, g: &CsrGraph, state: &mut NetworkState, rng: &mut dyn RngCore) {
        let mask = self.stubborn_mask(g.node_count());
        let mut next = state.clone();
        for v in g.nodes() {
            if mask[v as usize] || !rng.gen_bool(self.copy_prob) {
                continue;
            }
            let nbrs = g.in_neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            let pick: NodeId = nbrs[rng.gen_range(0..nbrs.len())];
            next.set(v, state.opinion(pick));
        }
        *state = next;
    }
}

/// Thresholded DeGroot/Friedkin–Johnsen averaging projected onto
/// `{−1, 0, +1}`: each user mixes her current opinion value with the mean
/// of her in-neighborhood (`susceptibility` weighting the neighborhood, the
/// FJ anchor keeping `1 − susceptibility` on herself) and the mixed value
/// is projected — at least `threshold` in magnitude to hold a polar
/// opinion, neutral otherwise. Deterministic: the RNG is unused.
#[derive(Clone, Debug)]
pub struct ThresholdedDeGroot {
    /// Weight on the neighborhood average (the FJ susceptibility `α`).
    pub susceptibility: f64,
    /// Minimum |mixed value| for a polar opinion; below it → neutral.
    pub threshold: f64,
}

impl ThresholdedDeGroot {
    /// Validating constructor.
    pub fn new(susceptibility: f64, threshold: f64) -> Result<Self, ModelError> {
        let threshold = probability("threshold", threshold)?;
        if threshold == 0.0 {
            return Err(ModelError::OutOfDomain {
                name: "threshold",
                value: "0".into(),
                constraint: "must be positive (a zero threshold never yields neutral users)",
            });
        }
        Ok(ThresholdedDeGroot {
            susceptibility: probability("susceptibility", susceptibility)?,
            threshold,
        })
    }
}

impl OpinionDynamics for ThresholdedDeGroot {
    fn name(&self) -> &'static str {
        "degroot-threshold"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![
            ("susceptibility", format!("{}", self.susceptibility)),
            ("threshold", format!("{}", self.threshold)),
        ]
    }

    fn step(&self, g: &CsrGraph, state: &mut NetworkState, _rng: &mut dyn RngCore) {
        let mut next = state.clone();
        for v in g.nodes() {
            let nbrs = g.in_neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            let sum: f64 = nbrs
                .iter()
                .map(|&u| f64::from(state.opinion(u).value()))
                .sum();
            let avg = sum / nbrs.len() as f64;
            let own = f64::from(state.opinion(v).value());
            let mixed = (1.0 - self.susceptibility) * own + self.susceptibility * avg;
            let op = if mixed >= self.threshold {
                Opinion::Positive
            } else if mixed <= -self.threshold {
                Opinion::Negative
            } else {
                Opinion::Neutral
            };
            next.set(v, op);
        }
        *state = next;
    }
}

/// Hegselmann–Krause-style bounded-confidence adoption on the discrete
/// opinion scale: a user who re-evaluates averages herself with only the
/// in-neighbors whose opinion value is within `confidence` of her own
/// (confidence 1: polar users ignore the opposite camp but hear neutrals —
/// the echo-chamber regime; confidence 2: everyone is heard), then projects
/// the average with `threshold` as in [`ThresholdedDeGroot`].
#[derive(Clone, Debug)]
pub struct BoundedConfidence {
    /// Maximum |opinion-value gap| for a neighbor to be heard (0, 1, or 2).
    pub confidence: i8,
    /// Probability a user re-evaluates each step.
    pub update_prob: f64,
    /// Minimum |average| for a polar opinion; below it → neutral.
    pub threshold: f64,
}

impl BoundedConfidence {
    /// Validating constructor.
    pub fn new(confidence: i8, update_prob: f64, threshold: f64) -> Result<Self, ModelError> {
        if !(0..=2).contains(&confidence) {
            return Err(ModelError::OutOfDomain {
                name: "confidence",
                value: format!("{confidence}"),
                constraint: "opinion values span {-1, 0, 1}, so the bound must be 0, 1, or 2",
            });
        }
        Ok(BoundedConfidence {
            confidence,
            update_prob: probability("update_prob", update_prob)?,
            threshold: probability("threshold", threshold)?,
        })
    }
}

impl OpinionDynamics for BoundedConfidence {
    fn name(&self) -> &'static str {
        "bounded-confidence"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![
            ("confidence", format!("{}", self.confidence)),
            ("update_prob", format!("{}", self.update_prob)),
            ("threshold", format!("{}", self.threshold)),
        ]
    }

    fn step(&self, g: &CsrGraph, state: &mut NetworkState, rng: &mut dyn RngCore) {
        let mut next = state.clone();
        for v in g.nodes() {
            if !rng.gen_bool(self.update_prob) {
                continue;
            }
            let own = state.opinion(v).value();
            // HK averaging includes the user herself.
            let mut sum = f64::from(own);
            let mut heard = 1usize;
            for &u in g.in_neighbors(v) {
                let x = state.opinion(u).value();
                if (x - own).abs() <= self.confidence {
                    sum += f64::from(x);
                    heard += 1;
                }
            }
            let avg = sum / heard as f64;
            let op = if avg >= self.threshold {
                Opinion::Positive
            } else if avg <= -self.threshold {
                Opinion::Negative
            } else {
                Opinion::Neutral
            };
            next.set(v, op);
        }
        *state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::seed_initial_adopters;
    use snd_graph::generators::{barabasi_albert, path_graph};

    fn fixture(seed: u64) -> (CsrGraph, NetworkState, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = barabasi_albert(300, 3, &mut rng);
        let state = seed_initial_adopters(300, 40, &mut rng).unwrap();
        (g, state, rng)
    }

    #[test]
    fn ported_voting_matches_free_function_bit_for_bit() {
        let (g, s0, mut rng_a) = fixture(7);
        let (_, _, mut rng_b) = fixture(7);
        let config = VotingConfig::new(0.2, 0.05).unwrap();
        let mut trait_state = s0.clone();
        let model = Voting {
            config,
            chances: None,
        };
        let mut free_state = s0;
        for _ in 0..5 {
            model.step(&g, &mut trait_state, &mut rng_a);
            free_state = voting_step(&g, &free_state, &config, &mut rng_b);
            assert_eq!(trait_state, free_state);
        }
    }

    #[test]
    fn ported_sampled_voting_matches_free_function_bit_for_bit() {
        let (g, s0, mut rng_a) = fixture(8);
        let (_, _, mut rng_b) = fixture(8);
        let config = VotingConfig::new(0.3, 0.1).unwrap();
        let model = Voting::sampled(config, 50);
        let mut trait_state = s0.clone();
        let mut free_state = s0;
        for _ in 0..5 {
            model.step(&g, &mut trait_state, &mut rng_a);
            free_state = voting_step_sampled(&g, &free_state, &config, 50, &mut rng_b);
            assert_eq!(trait_state, free_state);
        }
    }

    #[test]
    fn ported_cascades_match_free_functions_bit_for_bit() {
        let (g, s0, mut rng_a) = fixture(9);
        let (_, _, mut rng_b) = fixture(9);
        let icc = IndependentCascade::default();
        let mut a = s0.clone();
        let mut b = s0.clone();
        for _ in 0..3 {
            icc.step(&g, &mut a, &mut rng_a);
            b = icc_step(&g, &b, &icc.params, &mut rng_b);
            assert_eq!(a, b);
        }

        let (g, s0, mut rng_a) = fixture(10);
        let (_, _, mut rng_b) = fixture(10);
        let ltc = LinearThreshold::default();
        let mut a = s0.clone();
        let mut b = s0.clone();
        for _ in 0..3 {
            ltc.step(&g, &mut a, &mut rng_a);
            b = lt_step(&g, &b, &ltc.params, &mut rng_b);
            assert_eq!(a, b);
        }

        let (g, s0, mut rng_a) = fixture(11);
        let (_, _, mut rng_b) = fixture(11);
        let rnd = RandomActivation { count: 12 };
        let mut a = s0.clone();
        let mut b = s0;
        for _ in 0..3 {
            rnd.step(&g, &mut a, &mut rng_a);
            b = random_activation_step(&g, &b, 12, &mut rng_b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn majority_rule_converges_toward_local_majorities() {
        // A path where one camp dominates: with certain updates, the
        // minority end flips within a few steps.
        let g = path_graph(5);
        let mut state = NetworkState::from_values(&[1, 1, 1, 1, -1]);
        let model = MajorityRule::new(1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..4 {
            model.step(&g, &mut state, &mut rng);
        }
        assert_eq!(state.count(Opinion::Positive), 5, "{:?}", state.values());
    }

    #[test]
    fn majority_rule_tie_keeps_current_opinion() {
        // Node 2 sees one + and one −: a tie never flips it.
        let g = CsrGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let mut state = NetworkState::from_values(&[1, -1, 0]);
        let model = MajorityRule::new(1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        model.step(&g, &mut state, &mut rng);
        assert_eq!(state.opinion(2), Opinion::Neutral);
    }

    #[test]
    fn stubborn_users_never_move() {
        let (g, s0, mut rng) = fixture(12);
        let model = StubbornVoter::new(1.0, 0.3, 99).unwrap();
        let mask = model.stubborn_mask(g.node_count());
        assert!(mask.iter().any(|&m| m) && mask.iter().any(|&m| !m));
        let mut state = s0.clone();
        for _ in 0..6 {
            model.step(&g, &mut state, &mut rng);
        }
        for v in g.nodes() {
            if mask[v as usize] {
                assert_eq!(state.opinion(v), s0.opinion(v), "stubborn user {v} moved");
            }
        }
    }

    #[test]
    fn degroot_is_deterministic_and_projects_onto_polar_scale() {
        let g = path_graph(6);
        let s0 = NetworkState::from_values(&[1, 1, 0, 0, -1, -1]);
        let model = ThresholdedDeGroot::new(0.6, 0.4).unwrap();
        let mut rng_a = SmallRng::seed_from_u64(1);
        let mut rng_b = SmallRng::seed_from_u64(2);
        let mut a = s0.clone();
        let mut b = s0;
        for _ in 0..4 {
            model.step(&g, &mut a, &mut rng_a);
            model.step(&g, &mut b, &mut rng_b);
        }
        // Deterministic: different RNG seeds cannot matter.
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_confidence_echo_chambers_do_not_cross() {
        // Two cliques of opposite camps joined by one tie. With confidence
        // 1 a polar user never hears the opposite camp, so both camps
        // persist (no consensus) — the defining HK behavior.
        let edges = [
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (0, 2),
            (2, 0),
            (3, 4),
            (4, 3),
            (4, 5),
            (5, 4),
            (3, 5),
            (5, 3),
            (2, 3),
            (3, 2),
        ];
        let g = CsrGraph::from_edges(6, &edges);
        let mut state = NetworkState::from_values(&[1, 1, 1, -1, -1, -1]);
        let model = BoundedConfidence::new(1, 1.0, 0.4).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..8 {
            model.step(&g, &mut state, &mut rng);
        }
        assert!(state.count(Opinion::Positive) >= 2);
        assert!(state.count(Opinion::Negative) >= 2);
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Voting::new(0.9, 0.3).is_err());
        assert!(MajorityRule::new(1.5).is_err());
        assert!(StubbornVoter::new(0.5, -0.1, 0).is_err());
        assert!(ThresholdedDeGroot::new(2.0, 0.5).is_err());
        assert!(ThresholdedDeGroot::new(0.5, 0.0).is_err());
        assert!(BoundedConfidence::new(3, 0.5, 0.5).is_err());
    }

    #[test]
    fn simulate_series_has_expected_shape_and_introspection_works() {
        let (g, s0, mut rng) = fixture(13);
        let model: Box<dyn OpinionDynamics> = Box::new(Voting::new(0.2, 0.05).unwrap());
        let series = simulate_series(&g, model.as_ref(), s0, 6, &mut rng);
        assert_eq!(series.len(), 7);
        assert_eq!(model.name(), "voting");
        assert!(model
            .params()
            .iter()
            .any(|(k, v)| *k == "p_nbr" && v == "0.2"));
    }
}
