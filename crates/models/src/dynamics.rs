//! Forward simulators of polar opinion dynamics.
//!
//! These generate the network-state *series* that the evaluation section
//! analyzes:
//!
//! * [`voting_step`] — the paper's synthetic-data process (§6.1): every
//!   neutral user gets a chance to activate, adopting an opinion from the
//!   neighborhood with probability `p_nbr` (probabilistic voting over active
//!   in-neighbors) or a uniformly random opinion with probability `p_ext`.
//!   Anomalies are simulated by shifting probability mass between `p_nbr`
//!   and `p_ext` while preserving their sum, so the *rate* of activation is
//!   unchanged and only the *mechanism* differs (§6.2).
//! * [`icc_step`] — one round of the Independent Cascade with Competition:
//!   normal transitions for the model-sensitivity experiment (§6.4).
//! * [`lt_step`] — one round of the Linear Threshold with Competition.
//! * [`random_activation_step`] — structure-oblivious random activations:
//!   the anomalous transitions of §6.4.

use rand::Rng;
use snd_graph::{CsrGraph, NodeId};

use crate::error::{probability, ModelError};
use crate::icc::IccParams;
use crate::ltc::LtcParams;
use crate::state::{NetworkState, Opinion};

/// Parameters of the probabilistic-voting activation process.
#[derive(Clone, Copy, Debug)]
pub struct VotingConfig {
    /// Probability a neutral user adopts an opinion from her neighbors.
    pub p_nbr: f64,
    /// Probability a neutral user adopts a uniformly random opinion
    /// (an "external" influence).
    pub p_ext: f64,
}

impl VotingConfig {
    /// Creates a config. Both values must be probabilities and their sum —
    /// the total activation chance per step — must not exceed 1.
    pub fn new(p_nbr: f64, p_ext: f64) -> Result<Self, ModelError> {
        let p_nbr = probability("p_nbr", p_nbr)?;
        let p_ext = probability("p_ext", p_ext)?;
        if p_nbr + p_ext > 1.0 {
            return Err(ModelError::ProbabilitySumExceedsOne { p_nbr, p_ext });
        }
        Ok(VotingConfig { p_nbr, p_ext })
    }
}

/// Picks an opinion by probabilistic voting over the active in-neighbors of
/// `v` (probability proportional to the counts of each camp). Returns
/// `None` when no in-neighbor is active.
pub fn neighborhood_vote<R: Rng>(
    g: &CsrGraph,
    state: &NetworkState,
    v: NodeId,
    rng: &mut R,
) -> Option<Opinion> {
    let mut pos = 0usize;
    let mut neg = 0usize;
    for &u in g.in_neighbors(v) {
        match state.opinion(u) {
            Opinion::Positive => pos += 1,
            Opinion::Negative => neg += 1,
            Opinion::Neutral => {}
        }
    }
    if pos + neg == 0 {
        return None;
    }
    let p = pos as f64 / (pos + neg) as f64;
    Some(if rng.gen_bool(p) {
        Opinion::Positive
    } else {
        Opinion::Negative
    })
}

/// One step of the voting process: every neutral user flips a three-way
/// coin (adopt-from-neighbors / adopt-random / stay-neutral). A user whose
/// neighborhood vote is empty (no active in-neighbors) stays neutral — one
/// cannot adopt an opinion from nobody — so the paper's sum-preservation
/// property (`p_nbr + p_ext` fixes the activation volume) holds in the
/// regime where most users see at least one active in-neighbor.
pub fn voting_step<R: Rng>(
    g: &CsrGraph,
    state: &NetworkState,
    config: &VotingConfig,
    rng: &mut R,
) -> NetworkState {
    let mut next = state.clone();
    for v in g.nodes() {
        if state.opinion(v).is_active() {
            continue;
        }
        let r: f64 = rng.gen();
        if r < config.p_nbr {
            if let Some(op) = neighborhood_vote(g, state, v, rng) {
                next.set(v, op);
            }
        } else if r < config.p_nbr + config.p_ext {
            next.set(v, random_opinion(rng));
        }
    }
    next
}

/// Like [`voting_step`], but only a uniform sample of `chances` neutral
/// users gets the activation chance — the paper's "a number of Gi's neutral
/// users get a chance to be activated" for long series, where giving every
/// neutral user a chance each step would saturate the network.
pub fn voting_step_sampled<R: Rng>(
    g: &CsrGraph,
    state: &NetworkState,
    config: &VotingConfig,
    chances: usize,
    rng: &mut R,
) -> NetworkState {
    let mut next = state.clone();
    let mut neutral: Vec<NodeId> = g
        .nodes()
        .filter(|&v| !state.opinion(v).is_active())
        .collect();
    let k = chances.min(neutral.len());
    for i in 0..k {
        let j = rng.gen_range(i..neutral.len());
        neutral.swap(i, j);
        let v = neutral[i];
        let r: f64 = rng.gen();
        if r < config.p_nbr {
            if let Some(op) = neighborhood_vote(g, state, v, rng) {
                next.set(v, op);
            }
        } else if r < config.p_nbr + config.p_ext {
            next.set(v, random_opinion(rng));
        }
    }
    next
}

/// A uniformly random polar opinion.
pub fn random_opinion<R: Rng>(rng: &mut R) -> Opinion {
    if rng.gen_bool(0.5) {
        Opinion::Positive
    } else {
        Opinion::Negative
    }
}

/// One round of the Independent Cascade with Competition: every active user
/// attempts to activate each neutral out-neighbor with the edge's
/// activation probability; a user activated by several neighbors adopts one
/// of their opinions with probability proportional to the attempting edges'
/// activation probabilities (the distance-based tie-breaking of Carnes et
/// al. collapses to this for unit edge distances).
pub fn icc_step<R: Rng>(
    g: &CsrGraph,
    state: &NetworkState,
    params: &IccParams,
    rng: &mut R,
) -> NetworkState {
    let mut next = state.clone();
    for v in g.nodes() {
        if state.opinion(v).is_active() {
            continue;
        }
        let mut pos_w = 0.0f64;
        let mut neg_w = 0.0f64;
        for (e, u) in g.in_edges(v) {
            let op = state.opinion(u);
            if !op.is_active() {
                continue;
            }
            let p = params.activation_of(g, e, v);
            if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                match op {
                    Opinion::Positive => pos_w += p,
                    Opinion::Negative => neg_w += p,
                    Opinion::Neutral => unreachable!(),
                }
            }
        }
        if pos_w + neg_w > 0.0 {
            let p = pos_w / (pos_w + neg_w);
            next.set(
                v,
                if rng.gen_bool(p) {
                    Opinion::Positive
                } else {
                    Opinion::Negative
                },
            );
        }
    }
    next
}

/// One round of the Linear Threshold with Competition: a neutral user whose
/// incoming active influence reaches her threshold activates and adopts the
/// camp with the larger incoming weight (ties broken uniformly).
pub fn lt_step<R: Rng>(
    g: &CsrGraph,
    state: &NetworkState,
    params: &LtcParams,
    rng: &mut R,
) -> NetworkState {
    let mut next = state.clone();
    for v in g.nodes() {
        if state.opinion(v).is_active() {
            continue;
        }
        let mut pos_w = 0.0f64;
        let mut neg_w = 0.0f64;
        for (e, u) in g.in_edges(v) {
            match state.opinion(u) {
                Opinion::Positive => pos_w += params.weight_of(g, e, v),
                Opinion::Negative => neg_w += params.weight_of(g, e, v),
                Opinion::Neutral => {}
            }
        }
        if pos_w + neg_w >= params.threshold_of(v) {
            let op = if pos_w > neg_w {
                Opinion::Positive
            } else if neg_w > pos_w {
                Opinion::Negative
            } else {
                random_opinion(rng)
            };
            next.set(v, op);
        }
    }
    next
}

/// Structure-oblivious anomaly: activates `count` uniformly random neutral
/// users with uniformly random opinions (§6.4's anomalous transitions).
pub fn random_activation_step<R: Rng>(
    g: &CsrGraph,
    state: &NetworkState,
    count: usize,
    rng: &mut R,
) -> NetworkState {
    let mut next = state.clone();
    let mut neutral: Vec<NodeId> = g
        .nodes()
        .filter(|&v| !state.opinion(v).is_active())
        .collect();
    let k = count.min(neutral.len());
    // Partial Fisher–Yates: the first k entries become a uniform sample.
    for i in 0..k {
        let j = rng.gen_range(i..neutral.len());
        neutral.swap(i, j);
        next.set(neutral[i], random_opinion(rng));
    }
    next
}

/// Seeds `count` initial adopters uniformly at random, split approximately
/// evenly between the two opinions (the paper's initial network state).
///
/// Errors when `count > n` — asking for more adopters than users is a
/// configuration mistake, not something to silently clamp.
pub fn seed_initial_adopters<R: Rng>(
    n: usize,
    count: usize,
    rng: &mut R,
) -> Result<NetworkState, ModelError> {
    if count > n {
        return Err(ModelError::CountExceedsPopulation {
            what: "initial adopter",
            count,
            population: n,
        });
    }
    let mut state = NetworkState::new_neutral(n);
    let mut ids: Vec<NodeId> = (0..n as NodeId).collect();
    let k = count;
    for i in 0..k {
        let j = rng.gen_range(i..ids.len());
        ids.swap(i, j);
        let op = if i % 2 == 0 {
            Opinion::Positive
        } else {
            Opinion::Negative
        };
        state.set(ids[i], op);
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use snd_graph::generators::{barabasi_albert, path_graph};

    #[test]
    fn voting_step_only_activates_neutral_users() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = barabasi_albert(200, 3, &mut rng);
        let state = seed_initial_adopters(200, 20, &mut rng).unwrap();
        let next = voting_step(&g, &state, &VotingConfig::new(0.3, 0.1).unwrap(), &mut rng);
        for v in g.nodes() {
            if state.opinion(v).is_active() {
                assert_eq!(state.opinion(v), next.opinion(v), "active users never flip");
            }
        }
        assert!(next.active_count() >= state.active_count());
    }

    #[test]
    fn activation_rate_tracks_probability_sum() {
        // Sum preservation holds when most users have active in-neighbors;
        // seed half the network so the neighborhood-vote branch never
        // starves.
        let mut rng = SmallRng::seed_from_u64(2);
        let g = barabasi_albert(2000, 3, &mut rng);
        let state = seed_initial_adopters(2000, 1000, &mut rng).unwrap();
        let a = voting_step(
            &g,
            &state,
            &VotingConfig::new(0.15, 0.05).unwrap(),
            &mut rng,
        );
        let b = voting_step(
            &g,
            &state,
            &VotingConfig::new(0.05, 0.15).unwrap(),
            &mut rng,
        );
        let new_a = a.active_count() - state.active_count();
        let new_b = b.active_count() - state.active_count();
        // Same p_nbr + p_ext => similar activation volume (within noise).
        let ratio = new_a as f64 / new_b as f64;
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn neighborhood_vote_follows_majority() {
        let mut rng = SmallRng::seed_from_u64(3);
        // Node 2 sees two + and zero −.
        let g = CsrGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let state = NetworkState::from_values(&[1, 1, 0]);
        for _ in 0..10 {
            assert_eq!(
                neighborhood_vote(&g, &state, 2, &mut rng),
                Some(Opinion::Positive)
            );
        }
        let lonely = NetworkState::new_neutral(3);
        assert_eq!(neighborhood_vote(&g, &lonely, 2, &mut rng), None);
    }

    use snd_graph::CsrGraph;

    #[test]
    fn icc_step_spreads_from_seeds() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = path_graph(10);
        let mut state = NetworkState::new_neutral(10);
        state.set(5, Opinion::Positive);
        let params = IccParams {
            activation: crate::icc::EdgeActivation::Uniform(1.0),
            ..Default::default()
        };
        let next = icc_step(&g, &state, &params, &mut rng);
        assert_eq!(next.opinion(4), Opinion::Positive);
        assert_eq!(next.opinion(6), Opinion::Positive);
        assert_eq!(next.opinion(0), Opinion::Neutral);
    }

    #[test]
    fn lt_step_requires_threshold() {
        let mut rng = SmallRng::seed_from_u64(5);
        // Node 2 with two in-neighbors, one active: influence 0.5.
        let g = CsrGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let state = NetworkState::from_values(&[-1, 0, 0]);
        let low = LtcParams {
            thresholds: Some(vec![0.4; 3]),
            ..Default::default()
        };
        let next = lt_step(&g, &state, &low, &mut rng);
        assert_eq!(next.opinion(2), Opinion::Negative);
        let high = LtcParams {
            thresholds: Some(vec![0.9; 3]),
            ..Default::default()
        };
        let next = lt_step(&g, &state, &high, &mut rng);
        assert_eq!(next.opinion(2), Opinion::Neutral);
    }

    #[test]
    fn random_activation_changes_exactly_count_users() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = path_graph(50);
        let state = NetworkState::new_neutral(50);
        let next = random_activation_step(&g, &state, 7, &mut rng);
        assert_eq!(state.diff_count(&next), 7);
    }

    #[test]
    fn seeding_is_balanced() {
        let mut rng = SmallRng::seed_from_u64(7);
        let state = seed_initial_adopters(1000, 100, &mut rng).unwrap();
        assert_eq!(state.active_count(), 100);
        let pos = state.count(Opinion::Positive);
        assert_eq!(pos, 50);
    }
}
