//! Polar opinion dynamics models and opinion-dependent ground distances.
//!
//! SND's ground distance is derived from an *extended adjacency matrix*
//! (paper Eq. 2):
//!
//! ```text
//! A_ext(G, op) = −log P(G, op) − log Pin(G, op) − log Pout(G, op)
//! ```
//!
//! combining communication penalties (topological remoteness), opinion
//! adoption penalties (stubbornness), and opinion *spreading* penalties that
//! depend on a chosen opinion dynamics model. This crate provides:
//!
//! * [`NetworkState`] / [`Opinion`] — polar opinion assignments (+1/0/−1);
//! * [`GroundCostConfig`] + [`edge_costs`] — integer edge-cost construction
//!   satisfying the paper's Assumption 2 (costs in `[1, U]`), for the three
//!   spreading models of §3: model-agnostic constants, Independent Cascade
//!   with Competition (Carnes et al.), and Linear Threshold with Competition
//!   (Borodin et al.);
//! * [`dynamics`] — forward simulators (probabilistic-voting activation,
//!   ICC and LTC cascades, random activation) used to generate synthetic
//!   network-state series for the evaluation.

pub mod agnostic;
pub mod dynamics;
pub mod ground;
pub mod icc;
pub mod ltc;
pub mod state;

pub use agnostic::AgnosticPenalties;
pub use ground::{edge_costs, prob_to_cost, GroundCostConfig, SpreadingModel};
pub use icc::IccParams;
pub use ltc::LtcParams;
pub use state::{NetworkState, Opinion};
