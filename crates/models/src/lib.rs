//! Polar opinion dynamics models and opinion-dependent ground distances.
//!
//! SND's ground distance is derived from an *extended adjacency matrix*
//! (paper Eq. 2):
//!
//! ```text
//! A_ext(G, op) = −log P(G, op) − log Pin(G, op) − log Pout(G, op)
//! ```
//!
//! combining communication penalties (topological remoteness), opinion
//! adoption penalties (stubbornness), and opinion *spreading* penalties that
//! depend on a chosen opinion dynamics model. This crate provides:
//!
//! * [`NetworkState`] / [`Opinion`] — polar opinion assignments (+1/0/−1);
//! * [`GroundCostConfig`] + [`edge_costs`] — integer edge-cost construction
//!   satisfying the paper's Assumption 2 (costs in `[1, U]`), for the three
//!   spreading models of §3: model-agnostic constants, Independent Cascade
//!   with Competition (Carnes et al.), and Linear Threshold with Competition
//!   (Borodin et al.);
//! * [`process`] — **the unified opinion-dynamics engine**: the
//!   [`OpinionDynamics`] trait (an object-safe, introspectable transition
//!   kernel) and its implementations — the four processes ported from the
//!   pre-trait free functions ([`Voting`](process::Voting),
//!   [`IndependentCascade`](process::IndependentCascade),
//!   [`LinearThreshold`](process::LinearThreshold),
//!   [`RandomActivation`](process::RandomActivation); bit-identical per
//!   seed, regression-tested) plus polar-opinion models from the wider
//!   literature: Galam-style [`MajorityRule`](process::MajorityRule), the
//!   voter model with curmudgeons
//!   ([`StubbornVoter`](process::StubbornVoter)), thresholded
//!   DeGroot/Friedkin–Johnsen averaging projected onto the polar scale
//!   ([`ThresholdedDeGroot`](process::ThresholdedDeGroot)), and
//!   Hegselmann–Krause-style bounded confidence
//!   ([`BoundedConfidence`](process::BoundedConfidence)). Adding a model
//!   is a ~50-line trait impl; the scenario registry in `snd-data` and the
//!   `snd simulate` CLI pick it up from there.
//! * [`dynamics`] — the underlying free-function simulators (kept as the
//!   regression reference for the ported models and for callers that want
//!   a bare step function);
//! * [`ModelError`] — structured parameter-validation errors returned by
//!   every constructor (no `assert!` panics on bad user input).
//!
//! Every [`OpinionDynamics`] implementation is **deterministic per seed**:
//! a step is a pure function of `(graph, state, rng stream)`, so a fixed
//! seed reproduces a series bit-for-bit across runs and build profiles
//! (`tests/dynamics.rs` pins fingerprints).

pub mod agnostic;
pub mod delta;
pub mod dynamics;
pub mod error;
pub mod ground;
pub mod icc;
pub mod ltc;
pub mod process;
pub mod state;

pub use agnostic::AgnosticPenalties;
pub use delta::{apply_flips, flips_between, normalize_flips, update_edge_costs, StateDelta};
pub use error::ModelError;
pub use ground::{edge_costs, prob_to_cost, GroundCostConfig, SpreadingModel};
pub use icc::IccParams;
pub use ltc::LtcParams;
pub use process::{simulate_series, OpinionDynamics};
pub use state::{NetworkState, Opinion};
