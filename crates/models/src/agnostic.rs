//! Model-agnostic opinion propagation penalties (§3).
//!
//! When there is no evidence that opinions follow a specific dynamics model,
//! the spreading penalty of an edge depends only on the stance of the
//! *spreader* `u` relative to the opinion `op` being propagated (and on
//! whether the receiver actively holds the adverse opinion):
//!
//! ```text
//! −log Pout(u→v) = c_adverse   if G[u] ≠ op  (and u active)  or  G[v] = −op
//!                  c_neutral   if G[u] = 0
//!                  c_friendly  if G[u] = op
//! ```
//!
//! with `c_friendly < c_neutral < c_adverse`: users happily spread opinions
//! matching their own, are reluctant to spread adverse ones, and neutral
//! users sit in between.

use snd_graph::CsrGraph;

use crate::state::{NetworkState, Opinion};

/// The three constant penalties (in integer cost units).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AgnosticPenalties {
    /// Penalty when the spreader holds `op` itself.
    pub friendly: u32,
    /// Penalty when the spreader is neutral.
    pub neutral: u32,
    /// Penalty when the spreader holds the adverse opinion, or the receiver
    /// actively holds the adverse opinion.
    pub adverse: u32,
}

impl Default for AgnosticPenalties {
    fn default() -> Self {
        // friendly < neutral < adverse; with the +1 communication penalty
        // these give edge costs 1 / 6 / 21.
        AgnosticPenalties {
            friendly: 0,
            neutral: 5,
            adverse: 20,
        }
    }
}

impl AgnosticPenalties {
    /// Creates penalties, enforcing `friendly < neutral < adverse`.
    pub fn new(friendly: u32, neutral: u32, adverse: u32) -> Self {
        assert!(
            friendly < neutral && neutral < adverse,
            "penalties must satisfy friendly < neutral < adverse"
        );
        AgnosticPenalties {
            friendly,
            neutral,
            adverse,
        }
    }

    /// Largest penalty this model can emit.
    pub fn max_penalty(&self) -> u32 {
        self.adverse
    }
}

/// Penalty of one edge given the spreader's and receiver's stances — the
/// single-edge kernel shared by [`spreading_costs`] and the delta path
/// (`crate::delta`), which rederives costs only on touched edges.
#[inline]
pub(crate) fn edge_penalty(
    gu: Opinion,
    gv: Opinion,
    op: Opinion,
    penalties: &AgnosticPenalties,
) -> u32 {
    if (gu.is_active() && gu != op) || gv == op.opposite() {
        penalties.adverse
    } else if gu == Opinion::Neutral {
        penalties.neutral
    } else {
        penalties.friendly
    }
}

/// Spreading penalties per edge for opinion `op` in state `state`.
pub fn spreading_costs(
    g: &CsrGraph,
    state: &NetworkState,
    op: Opinion,
    penalties: &AgnosticPenalties,
) -> Vec<u32> {
    let mut costs = Vec::with_capacity(g.edge_count());
    for (u, v) in g.edges() {
        costs.push(edge_penalty(
            state.opinion(u),
            state.opinion(v),
            op,
            penalties,
        ));
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;
    use snd_graph::CsrGraph;

    #[test]
    fn penalties_follow_spreader_stance() {
        // 0(+) -> 1(0), 1(0) -> 2(0), 3(-) -> 2(0), 0(+) -> 2(0)
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (3, 2), (0, 2)]);
        let state = NetworkState::from_values(&[1, 0, 0, -1]);
        let p = AgnosticPenalties::default();
        let costs = spreading_costs(&g, &state, Opinion::Positive, &p);
        let cost_of = |u, v| costs[g.find_edge(u, v).unwrap() as usize];
        assert_eq!(cost_of(0, 1), p.friendly); // + spreads +
        assert_eq!(cost_of(1, 2), p.neutral); // neutral spreader
        assert_eq!(cost_of(3, 2), p.adverse); // − spreads +
        assert_eq!(cost_of(0, 2), p.friendly);
    }

    #[test]
    fn adverse_receiver_blocks_propagation() {
        // 0(+) -> 1(−): receiver holds the adverse opinion.
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let state = NetworkState::from_values(&[1, -1]);
        let p = AgnosticPenalties::default();
        let costs = spreading_costs(&g, &state, Opinion::Positive, &p);
        assert_eq!(costs[0], p.adverse);
    }

    #[test]
    fn penalties_are_opinion_specific() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let state = NetworkState::from_values(&[-1, 0]);
        let p = AgnosticPenalties::default();
        let for_minus = spreading_costs(&g, &state, Opinion::Negative, &p);
        let for_plus = spreading_costs(&g, &state, Opinion::Positive, &p);
        assert_eq!(for_minus[0], p.friendly);
        assert_eq!(for_plus[0], p.adverse);
    }

    #[test]
    #[should_panic(expected = "friendly < neutral < adverse")]
    fn ordering_enforced() {
        let _ = AgnosticPenalties::new(5, 5, 6);
    }
}
