//! Linear Threshold with Competition (Borodin et al.) spreading
//! probabilities (§3).
//!
//! Every edge carries an influence weight `ω_uv` and every user a threshold
//! `θ_v`. With `N_in(G, v)` the set of active in-neighbors of `v` and
//! `Ω_in = Σ_{x ∈ N_in} ω_xv`:
//!
//! ```text
//! Pout(u→v) = 0                      if u ∉ N_in(G, v)
//!             1                      if G[u] = op ∧ G[v] = op
//!             (1 − ε)·ω_uv / Ω_in    if G[u] = op ∧ G[v] = 0 ∧ Ω_in ≥ θ_v
//!             ε                      otherwise
//! ```
//!
//! As with ICC, "impossible" branches receive probability `ε` so all state
//! pairs remain at finite distance.

use snd_graph::CsrGraph;

use crate::error::ModelError;
use crate::state::{NetworkState, Opinion};

/// Per-edge influence weights.
#[derive(Clone, Debug)]
pub enum EdgeWeights {
    /// `ω_uv = 1 / in_degree(v)` — thresholds compare against the active
    /// fraction of the in-neighborhood.
    DegreeNormalized,
    /// Same weight on every edge.
    Uniform(f64),
    /// Explicit per-edge weights (aligned with forward edge ids).
    PerEdge(Vec<f64>),
}

/// LTC model parameters.
#[derive(Clone, Debug)]
pub struct LtcParams {
    /// Influence weights `ω_uv`.
    pub weights: EdgeWeights,
    /// Per-user thresholds `θ_v`; `None` = 0.5 everywhere.
    pub thresholds: Option<Vec<f64>>,
    /// Probability of model-impossible events.
    pub epsilon: f64,
}

impl Default for LtcParams {
    fn default() -> Self {
        LtcParams {
            weights: EdgeWeights::DegreeNormalized,
            thresholds: None,
            epsilon: 1e-6,
        }
    }
}

impl LtcParams {
    /// Validating constructor: checks weight/threshold shapes and domains
    /// against `g` so a malformed configuration surfaces as a
    /// [`ModelError`] instead of a mid-simulation panic.
    pub fn for_graph(
        g: &CsrGraph,
        weights: EdgeWeights,
        thresholds: Option<Vec<f64>>,
        epsilon: f64,
    ) -> Result<Self, ModelError> {
        crate::error::probability("epsilon", epsilon)?;
        match &weights {
            EdgeWeights::Uniform(w) if !(w.is_finite() && *w >= 0.0) => {
                return Err(ModelError::OutOfDomain {
                    name: "edge weight",
                    value: format!("{w}"),
                    constraint: "must be finite and non-negative",
                });
            }
            EdgeWeights::PerEdge(w) => {
                if w.len() != g.edge_count() {
                    return Err(ModelError::LengthMismatch {
                        what: "per-edge weights",
                        expected: g.edge_count(),
                        got: w.len(),
                    });
                }
                if let Some(bad) = w.iter().find(|x| !(x.is_finite() && **x >= 0.0)) {
                    return Err(ModelError::OutOfDomain {
                        name: "edge weight",
                        value: format!("{bad}"),
                        constraint: "must be finite and non-negative",
                    });
                }
            }
            _ => {}
        }
        if let Some(t) = &thresholds {
            if t.len() != g.node_count() {
                return Err(ModelError::LengthMismatch {
                    what: "per-node thresholds",
                    expected: g.node_count(),
                    got: t.len(),
                });
            }
            if let Some(bad) = t.iter().find(|x| !x.is_finite()) {
                return Err(ModelError::OutOfDomain {
                    name: "threshold",
                    value: format!("{bad}"),
                    constraint: "must be finite",
                });
            }
        }
        Ok(LtcParams {
            weights,
            thresholds,
            epsilon,
        })
    }

    /// Weight of edge `e = (u, v)`.
    pub fn weight_of(&self, g: &CsrGraph, e: u32, v: u32) -> f64 {
        match &self.weights {
            EdgeWeights::DegreeNormalized => {
                let deg = g.in_degree(v);
                if deg == 0 {
                    0.0
                } else {
                    1.0 / deg as f64
                }
            }
            EdgeWeights::Uniform(w) => *w,
            EdgeWeights::PerEdge(w) => w[e as usize],
        }
    }

    /// Threshold of node `v`.
    pub fn threshold_of(&self, v: u32) -> f64 {
        self.thresholds.as_ref().map_or(0.5, |t| t[v as usize])
    }
}

/// Ω_in at node `v`: total incoming active influence. Iterates `v`'s
/// in-edges in edge order so the floating-point sum is reproducible — the
/// delta path (`crate::delta`) recomputes exactly this per touched
/// receiver and must match the full sweep bit for bit.
pub(crate) fn omega_at(g: &CsrGraph, state: &NetworkState, params: &LtcParams, v: u32) -> f64 {
    let mut omega = 0.0f64;
    for (e, u) in g.in_edges(v) {
        if state.opinion(u).is_active() {
            omega += params.weight_of(g, e, v);
        }
    }
    omega
}

/// Spreading probability of one edge `e = (u, v)` given `v`'s Ω_in — the
/// single-edge kernel shared by [`spreading_probabilities`] and the delta
/// path.
#[allow(clippy::too_many_arguments)] // mirrors the per-edge model inputs
pub(crate) fn edge_probability(
    g: &CsrGraph,
    state: &NetworkState,
    op: Opinion,
    params: &LtcParams,
    e: u32,
    u: u32,
    v: u32,
    omega_in: f64,
) -> f64 {
    let eps = params.epsilon;
    let gu = state.opinion(u);
    let gv = state.opinion(v);
    let p = if !gu.is_active() {
        eps // u ∉ N_in(G, v)
    } else if gu == op && gv == op {
        1.0
    } else if gu == op && gv == Opinion::Neutral && omega_in >= params.threshold_of(v) {
        let w = params.weight_of(g, e, v);
        ((1.0 - eps) * w / omega_in).min(1.0)
    } else {
        eps
    };
    p.max(eps)
}

/// Spreading probabilities per edge for opinion `op` in state `state`.
pub fn spreading_probabilities(
    g: &CsrGraph,
    state: &NetworkState,
    op: Opinion,
    params: &LtcParams,
) -> Vec<f64> {
    if let EdgeWeights::PerEdge(w) = &params.weights {
        assert_eq!(w.len(), g.edge_count(), "weights per edge");
    }
    if let Some(t) = &params.thresholds {
        assert_eq!(t.len(), g.node_count(), "thresholds per node");
    }

    // Ω_in per node: total incoming active influence.
    let n = g.node_count();
    let mut omega_in = vec![0.0f64; n];
    for v in g.nodes() {
        omega_in[v as usize] = omega_at(g, state, params, v);
    }

    let mut probs = Vec::with_capacity(g.edge_count());
    let mut edge_id = 0u32;
    for u in g.nodes() {
        for &v in g.out_neighbors(u) {
            probs.push(edge_probability(
                g,
                state,
                op,
                params,
                edge_id,
                u,
                v,
                omega_in[v as usize],
            ));
            edge_id += 1;
        }
    }
    probs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_opinion_pair_is_certain() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let state = NetworkState::from_values(&[-1, -1]);
        let p = spreading_probabilities(&g, &state, Opinion::Negative, &LtcParams::default());
        assert_eq!(p[0], 1.0);
    }

    #[test]
    fn below_threshold_blocks_influence() {
        // v=2 has two in-neighbors, only one active: Ω_in = 0.5 < θ = 0.9.
        let g = CsrGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let state = NetworkState::from_values(&[1, 0, 0]);
        let params = LtcParams {
            thresholds: Some(vec![0.9; 3]),
            ..Default::default()
        };
        let p = spreading_probabilities(&g, &state, Opinion::Positive, &params);
        assert!(p[g.find_edge(0, 2).unwrap() as usize] <= 1e-6);
    }

    #[test]
    fn influence_is_weight_proportional_above_threshold() {
        // Both in-neighbors active: Ω_in = 1.0 ≥ 0.5; friendly edge carries
        // ω/Ω = 0.5 (scaled by 1−ε).
        let g = CsrGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let state = NetworkState::from_values(&[1, -1, 0]);
        let p = spreading_probabilities(&g, &state, Opinion::Positive, &LtcParams::default());
        let friendly = p[g.find_edge(0, 2).unwrap() as usize];
        let adverse = p[g.find_edge(1, 2).unwrap() as usize];
        assert!((friendly - 0.5).abs() < 1e-3, "{friendly}");
        assert!(adverse <= 1e-6);
    }

    #[test]
    fn inactive_spreaders_are_epsilon() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let state = NetworkState::from_values(&[0, 1]);
        let p = spreading_probabilities(&g, &state, Opinion::Positive, &LtcParams::default());
        assert!(p[0] <= 1e-6);
    }

    #[test]
    fn adverse_competition_dilutes_but_does_not_block() {
        // v has 4 in-neighbors: 2 friendly, 2 adverse, all active.
        // Ω_in = 1.0; each friendly edge carries 0.25.
        let g = CsrGraph::from_edges(5, &[(0, 4), (1, 4), (2, 4), (3, 4)]);
        let state = NetworkState::from_values(&[1, 1, -1, -1, 0]);
        let p = spreading_probabilities(&g, &state, Opinion::Positive, &LtcParams::default());
        let f = p[g.find_edge(0, 4).unwrap() as usize];
        assert!((f - 0.25).abs() < 1e-3, "{f}");
    }
}
