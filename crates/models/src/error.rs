//! Structured validation errors for model parameters.
//!
//! Constructors validate instead of `assert!`-ing so a bad parameter coming
//! from a config file or CLI flag surfaces as a printable error, not a
//! panic in library code.

use std::fmt;

/// A model parameter rejected at construction time.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A probability-like parameter outside `[0, 1]` (or NaN).
    InvalidProbability {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The voting split `p_nbr + p_ext` exceeds 1.
    ProbabilitySumExceedsOne {
        /// Neighbor-adoption probability.
        p_nbr: f64,
        /// External-adoption probability.
        p_ext: f64,
    },
    /// A requested seed/activation count larger than the population.
    CountExceedsPopulation {
        /// What was being counted.
        what: &'static str,
        /// Requested count.
        count: usize,
        /// Population size.
        population: usize,
    },
    /// A per-edge or per-node parameter vector of the wrong length.
    LengthMismatch {
        /// What the vector parameterizes.
        what: &'static str,
        /// Required length (edge or node count).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// A parameter outside its documented domain (catch-all with a
    /// human-readable constraint).
    OutOfDomain {
        /// Parameter name.
        name: &'static str,
        /// Offending value, formatted.
        value: String,
        /// The constraint that was violated.
        constraint: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidProbability { name, value } => {
                write!(f, "{name} = {value} is not a probability in [0, 1]")
            }
            ModelError::ProbabilitySumExceedsOne { p_nbr, p_ext } => write!(
                f,
                "p_nbr + p_ext = {} exceeds 1 (p_nbr = {p_nbr}, p_ext = {p_ext})",
                p_nbr + p_ext
            ),
            ModelError::CountExceedsPopulation {
                what,
                count,
                population,
            } => write!(f, "{what} count {count} exceeds population {population}"),
            ModelError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} has length {got}, expected {expected}"),
            ModelError::OutOfDomain {
                name,
                value,
                constraint,
            } => write!(f, "{name} = {value} violates: {constraint}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Validates that `value` is a probability in `[0, 1]`.
pub(crate) fn probability(name: &'static str, value: f64) -> Result<f64, ModelError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(ModelError::InvalidProbability { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidProbability {
            name: "p_nbr",
            value: 1.5,
        };
        assert!(e.to_string().contains("p_nbr"));
        let e = ModelError::CountExceedsPopulation {
            what: "initial adopter",
            count: 10,
            population: 5,
        };
        assert!(e.to_string().contains("exceeds population 5"));
    }

    #[test]
    fn probability_guard() {
        assert!(probability("p", 0.0).is_ok());
        assert!(probability("p", 1.0).is_ok());
        assert!(probability("p", -0.1).is_err());
        assert!(probability("p", f64::NAN).is_err());
    }
}
