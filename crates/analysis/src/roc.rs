//! ROC analysis for ranking-based anomaly detection (Fig. 8).

/// One point of a ROC curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RocPoint {
    /// False positive rate at this threshold.
    pub fpr: f64,
    /// True positive rate at this threshold.
    pub tpr: f64,
    /// Score threshold producing this point (items with score `>=`
    /// threshold are flagged).
    pub threshold: f64,
}

/// Computes the ROC curve of `scores` against boolean ground truth, from
/// `(0, 0)` to `(1, 1)`. Ties in score move along both axes at once.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "one label per score");
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // total_cmp: a NaN score sorts deterministically (first, above +inf)
    // instead of making the comparator non-transitive.
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut curve = vec![RocPoint {
        fpr: 0.0,
        tpr: 0.0,
        threshold: f64::INFINITY,
    }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0usize;
    while i < order.len() {
        // Process all items sharing this score together. Tie detection
        // must be total_cmp equality: with `==`, a NaN score never equals
        // itself, the inner loop consumes nothing, and the outer loop
        // spins forever.
        let score = scores[order[i]];
        while i < order.len() && scores[order[i]].total_cmp(&score).is_eq() {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push(RocPoint {
            fpr: if negatives == 0 {
                0.0
            } else {
                fp as f64 / negatives as f64
            },
            tpr: if positives == 0 {
                0.0
            } else {
                tp as f64 / positives as f64
            },
            threshold: score,
        });
    }
    curve
}

/// Area under the ROC curve (trapezoidal).
pub fn auc(curve: &[RocPoint]) -> f64 {
    curve
        .windows(2)
        .map(|w| (w[1].fpr - w[0].fpr) * 0.5 * (w[0].tpr + w[1].tpr))
        .sum()
}

/// Highest TPR achievable at false positive rate `<= max_fpr`.
pub fn tpr_at_fpr(curve: &[RocPoint], max_fpr: f64) -> f64 {
    curve
        .iter()
        .filter(|p| p.fpr <= max_fpr + 1e-12)
        .map(|p| p.tpr)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let curve = roc_curve(&scores, &labels);
        assert!((auc(&curve) - 1.0).abs() < 1e-12);
        assert!((tpr_at_fpr(&curve, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        let curve = roc_curve(&scores, &labels);
        assert!(auc(&curve) < 1e-12);
    }

    #[test]
    fn random_ranking_is_half() {
        // Alternating labels with strictly decreasing scores: staircase
        // around the diagonal.
        let scores: Vec<f64> = (0..100).map(|i| 1.0 - i as f64 / 100.0).collect();
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let curve = roc_curve(&scores, &labels);
        assert!((auc(&curve) - 0.5).abs() < 0.02);
    }

    #[test]
    fn tied_scores_move_diagonally() {
        let scores = [0.5, 0.5];
        let labels = [true, false];
        let curve = roc_curve(&scores, &labels);
        assert_eq!(curve.len(), 2);
        assert!((curve[1].fpr - 1.0).abs() < 1e-12);
        assert!((curve[1].tpr - 1.0).abs() < 1e-12);
        assert!((auc(&curve) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nan_scores_terminate_and_grade_finite() {
        // Regression: tie grouping used `==`, and `NaN != NaN` meant the
        // inner loop consumed nothing while the outer loop never
        // advanced — a NaN score hung roc_curve forever. total_cmp
        // equality groups the NaNs into one threshold step.
        let scores = [f64::NAN, 0.8, f64::NAN, 0.2];
        let labels = [false, true, false, false];
        let curve = roc_curve(&scores, &labels);
        // Origin + three threshold groups: {NaN, NaN}, {0.8}, {0.2}.
        assert_eq!(curve.len(), 4);
        assert!(auc(&curve).is_finite());
        let last = curve.last().expect("curve is never empty");
        assert!((last.fpr - 1.0).abs() < 1e-12);
        assert!((last.tpr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tpr_at_fpr_respects_budget() {
        let scores = [0.9, 0.7, 0.5, 0.3];
        let labels = [true, false, true, false];
        let curve = roc_curve(&scores, &labels);
        // At FPR 0: only the first item flagged -> TPR 0.5.
        assert!((tpr_at_fpr(&curve, 0.0) - 0.5).abs() < 1e-12);
        // Allowing FPR 0.5 reaches TPR 1.0.
        assert!((tpr_at_fpr(&curve, 0.5) - 1.0).abs() < 1e-12);
    }
}
