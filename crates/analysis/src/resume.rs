//! Checkpoint-backed pairwise/series evaluation.
//!
//! The all-pairs and series workloads over large snapshot sets run for
//! minutes to hours; these entry points route them through the tile-based
//! shard subsystem (`snd_core::shard`) with a checkpoint file, so an
//! interrupted run — or a rerun over the same snapshots — resumes from the
//! completed tiles instead of starting over. The checkpoint is bound to
//! the snapshot set by fingerprint and results are bit-identical to the
//! non-checkpointed evaluation.
//!
//! Checkpoints written here also carry advisory per-tile `W` timing
//! lines (compute wall seconds), which the distributed orchestrator
//! (`snd_orchestrate`) reads to warm-start its lease autotuner when a
//! single-process run is later finished by a worker fleet — and vice
//! versa. Timings never participate in checkpoint equality or
//! fingerprint validation, so pre-timing checkpoint files (no `W`
//! lines) load and resume unchanged.

use std::path::Path;

use snd_core::{DistanceMatrix, ShardError, ShardPlan, SndEngine, SndInterval, TileGrid};
use snd_models::NetworkState;

/// All-pairs SND matrix with checkpoint/resume: computes (or resumes) the
/// full tile grid at `tile` states per block, appending each finished tile
/// to `checkpoint`. Bit-identical to `SndEngine::pairwise_distances`.
pub fn pairwise_distances_checkpointed(
    engine: &SndEngine<'_>,
    states: &[NetworkState],
    tile: usize,
    checkpoint: &Path,
) -> Result<DistanceMatrix, ShardError> {
    let grid = TileGrid::new(states.len(), tile);
    let run = engine.pairwise_tiles_checkpointed(states, &ShardPlan::full(grid), checkpoint)?;
    run.tiles.to_matrix()
}

/// Adjacent-transition distances `d(G_t, G_{t+1})` with checkpoint/resume:
/// computes only the tiles covering the superdiagonal, so a series run
/// prices `O(k·tile)` pairs instead of the full matrix — and computes
/// them through the **delta path** (`snd_core::delta`): each state's
/// geometry bundle is advanced from the previous one via touched-edge
/// cost rederivation and SSSP row repair instead of rebuilt from scratch.
/// The checkpoint format and values are bit-identical to the batch tile
/// path, so old checkpoints resume here, and a later
/// `pairwise_distances_checkpointed` call over the same checkpoint reuses
/// these tiles. Bit-identical to `SndEngine::series_distances`.
pub fn series_distances_checkpointed(
    engine: &SndEngine<'_>,
    states: &[NetworkState],
    tile: usize,
    checkpoint: &Path,
) -> Result<Vec<f64>, ShardError> {
    if states.len() < 2 {
        return Ok(Vec::new());
    }
    let run = engine.series_tiles_checkpointed(states, tile, checkpoint)?;
    Ok((1..states.len())
        .map(|t| {
            run.tiles
                .pair(t - 1, t)
                // lint:allow(no-unwrap) series_tiles_checkpointed returns a superdiagonal plan whose tiles cover every (t-1, t) pair by construction
                .expect("superdiagonal plan covers every transition")
        })
        .collect())
}

/// [`series_distances_checkpointed`] keeping the certified envelopes: one
/// entry per transition, `Some([lo, hi])` when the checkpoint's tile
/// carries interval certification (an approximate-tier run wrote it) and
/// `None` for exact-tier tiles or tiles resumed from a pre-interval
/// checkpoint — the scalar series is still available either way.
pub fn series_intervals_checkpointed(
    engine: &SndEngine<'_>,
    states: &[NetworkState],
    tile: usize,
    checkpoint: &Path,
) -> Result<Vec<Option<SndInterval>>, ShardError> {
    if states.len() < 2 {
        return Ok(Vec::new());
    }
    let run = engine.series_tiles_checkpointed(states, tile, checkpoint)?;
    Ok((1..states.len())
        .map(|t| run.tiles.pair_interval(t - 1, t))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snd_core::SndConfig;
    use snd_graph::generators::path_graph;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("snd_resume_{}_{name}", std::process::id()))
    }

    fn states() -> Vec<NetworkState> {
        vec![
            NetworkState::from_values(&[1, 0, 0, 0, 0, -1]),
            NetworkState::from_values(&[1, 1, 0, 0, -1, -1]),
            NetworkState::from_values(&[0, 1, 1, -1, -1, 0]),
            NetworkState::from_values(&[0, 0, 1, 1, -1, 0]),
            NetworkState::from_values(&[-1, 0, 1, 1, 0, 0]),
        ]
    }

    #[test]
    fn checkpointed_matrix_matches_batch_and_resumes() {
        let g = path_graph(6);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states();
        let path = temp_path("pairwise.ckpt");
        let _ = std::fs::remove_file(&path);

        let first = pairwise_distances_checkpointed(&engine, &s, 2, &path).unwrap();
        assert_eq!(first, engine.pairwise_distances(&s));
        // A rerun over the same checkpoint recomputes nothing and agrees.
        let second = pairwise_distances_checkpointed(&engine, &s, 2, &path).unwrap();
        assert_eq!(first, second);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpointed_series_matches_series_and_feeds_pairwise() {
        let g = path_graph(6);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states();
        let path = temp_path("series.ckpt");
        let _ = std::fs::remove_file(&path);

        let series = series_distances_checkpointed(&engine, &s, 2, &path).unwrap();
        assert_eq!(series, engine.series_distances(&s));
        // The full matrix over the same checkpoint reuses the series tiles.
        let m = pairwise_distances_checkpointed(&engine, &s, 2, &path).unwrap();
        assert_eq!(m, engine.pairwise_distances(&s));
        std::fs::remove_file(&path).unwrap();

        assert!(series_distances_checkpointed(&engine, &s[..1], 2, &path)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn checkpointed_series_intervals_certify_the_scalars() {
        let g = path_graph(6);
        let approx = SndConfig {
            approx: Some(snd_core::ApproxConfig {
                epsilon: 0.5,
                min_nodes: 0,
                ..Default::default()
            }),
            ..Default::default()
        };
        let engine = SndEngine::new(&g, approx);
        let s = states();
        let path = temp_path("series_intervals.ckpt");
        let _ = std::fs::remove_file(&path);

        let scalars = series_distances_checkpointed(&engine, &s, 2, &path).unwrap();
        // Resume off the same checkpoint: tiles (and their `I` lines) load
        // rather than recompute, and every transition comes back certified.
        let intervals = series_intervals_checkpointed(&engine, &s, 2, &path).unwrap();
        assert_eq!(intervals.len(), scalars.len());
        for (d, iv) in scalars.iter().zip(&intervals) {
            let iv = iv.expect("approximate-tier checkpoints certify");
            assert!(
                iv.lower <= d + 1e-12 && *d <= iv.upper + 1e-12,
                "{d} outside [{}, {}]",
                iv.lower,
                iv.upper
            );
        }
        std::fs::remove_file(&path).unwrap();

        // An exact-tier checkpoint yields scalars but no certification.
        let exact = SndEngine::new(&g, SndConfig::default());
        let path = temp_path("series_intervals_exact.ckpt");
        let _ = std::fs::remove_file(&path);
        let intervals = series_intervals_checkpointed(&exact, &s, 2, &path).unwrap();
        assert!(intervals.iter().all(|iv| iv.is_none()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_checkpoints_carry_timings_and_old_formats_still_load() {
        let g = path_graph(6);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states();
        let path = temp_path("timings.ckpt");
        let _ = std::fs::remove_file(&path);

        let first = pairwise_distances_checkpointed(&engine, &s, 2, &path).unwrap();

        // Every computed tile left an advisory `W` timing line — the
        // orchestrator's autotuner warm-starts from these.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().any(|l| l.starts_with("W ")),
            "resume-path checkpoints should carry W timing lines:\n{text}"
        );
        let grid = TileGrid::new(s.len(), 2);
        let (set, _ckpt) =
            snd_core::Checkpoint::open(&path, grid, engine.shard_fingerprint(&s)).unwrap();
        for id in 0..grid.tile_count() {
            assert!(
                set.timing(id).is_some(),
                "tile {id} lost its timing on reload"
            );
        }

        // Strip the `W` lines to fake a pre-timing checkpoint: it must
        // still load, resume without recomputation, and agree bit-for-bit.
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("W "))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&path, stripped).unwrap();
        let second = pairwise_distances_checkpointed(&engine, &s, 2, &path).unwrap();
        assert_eq!(first, second);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_refuses_a_different_snapshot_set() {
        let g = path_graph(6);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states();
        let path = temp_path("mismatch.ckpt");
        let _ = std::fs::remove_file(&path);

        pairwise_distances_checkpointed(&engine, &s, 2, &path).unwrap();
        let mut other = s.clone();
        other[0] = NetworkState::from_values(&[-1, -1, -1, -1, -1, -1]);
        assert!(matches!(
            pairwise_distances_checkpointed(&engine, &other, 2, &path),
            Err(ShardError::Mismatch(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
