//! Adapter implementing the common [`StateDistance`] trait for SND, so the
//! anomaly/prediction harnesses treat SND and the baselines uniformly.

use snd_baselines::StateDistance;
use snd_core::SndEngine;
use snd_models::NetworkState;

/// SND as a [`StateDistance`] (sparse path).
pub struct SndDistance<'e, 'g> {
    engine: &'e SndEngine<'g>,
}

impl<'e, 'g> SndDistance<'e, 'g> {
    /// Wraps an engine.
    pub fn new(engine: &'e SndEngine<'g>) -> Self {
        SndDistance { engine }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &'e SndEngine<'g> {
        self.engine
    }
}

impl StateDistance for SndDistance<'_, '_> {
    fn distance(&self, a: &NetworkState, b: &NetworkState) -> f64 {
        self.engine.distance(a, b)
    }

    fn name(&self) -> &'static str {
        "SND"
    }

    /// Batch override: the cached, parallel all-pairs pipeline (geometry
    /// once per state, SSSP rows shared across the whole matrix).
    fn pairwise(&self, states: &[NetworkState]) -> Vec<Vec<f64>> {
        self.engine.pairwise_distances(states).to_rows()
    }

    /// Batch override: parallel series evaluation with per-state geometry
    /// shared between adjacent transitions.
    fn series(&self, states: &[NetworkState]) -> Vec<f64> {
        self.engine.series_distances(states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snd_core::SndConfig;
    use snd_graph::generators::path_graph;

    #[test]
    fn batch_overrides_match_pair_at_a_time_evaluation() {
        let g = path_graph(7);
        let engine = SndEngine::new(&g, SndConfig::default());
        let dist = SndDistance::new(&engine);
        let states = vec![
            NetworkState::from_values(&[1, 0, 0, 0, 0, 0, -1]),
            NetworkState::from_values(&[1, 1, 0, 0, 0, -1, -1]),
            NetworkState::from_values(&[0, 1, 1, 0, -1, -1, 0]),
        ];
        let batch = dist.pairwise(&states);
        for i in 0..states.len() {
            for j in 0..states.len() {
                assert_eq!(batch[i][j], engine.distance(&states[i], &states[j]));
            }
        }
        let series = dist.series(&states);
        assert_eq!(series.len(), 2);
        for (t, &d) in series.iter().enumerate() {
            assert_eq!(d, engine.distance(&states[t], &states[t + 1]));
        }
    }

    #[test]
    fn adapter_delegates_to_engine() {
        let g = path_graph(6);
        let engine = SndEngine::new(&g, SndConfig::default());
        let dist = SndDistance::new(&engine);
        let a = NetworkState::from_values(&[1, 0, 0, 0, 0, -1]);
        let b = NetworkState::from_values(&[0, 1, 0, 0, -1, 0]);
        assert_eq!(dist.distance(&a, &b), engine.distance(&a, &b));
        assert_eq!(dist.name(), "SND");
    }
}
