//! Distance-based opinion prediction (§6.3).
//!
//! Given recent complete states `G_{−T} … G_{−1}` and an incomplete current
//! state `G_0` (a set of target users with unknown opinions), the predictor
//!
//! 1. extrapolates the adjacent-state distance series to an estimate `d*`
//!    of `dist(G_{−1}, G_0)`;
//! 2. draws random opinion assignments for the target users;
//! 3. keeps the assignment whose completed state sits closest to `d*`.
//!
//! A candidate is represented as a **flip-list** — the `(target, opinion)`
//! assignment pairs — never as a materialized `NetworkState`, so a search
//! over hundreds of candidates allocates `O(candidates · targets)`, not
//! `O(candidates · n)`. The SND evaluator
//! (`snd_core::CandidateEvaluator::price_candidates`) prices flip-lists
//! directly against its anchored delta geometry; baseline measures that
//! need a full state apply the flips into one reused buffer inside their
//! closure.
//!
//! Degenerate inputs (empty series, zero candidates, a misbehaving batch
//! evaluator) surface as [`AnalysisError`] values rather than panics.

use rand::Rng;
use snd_graph::NodeId;
use snd_models::dynamics::random_opinion;
use snd_models::{NetworkState, Opinion};

use crate::error::AnalysisError;

/// Linear extrapolation of the next value of a series (least squares over
/// all points; with two points this is `2·d₂ − d₁`). A single point
/// extrapolates to itself; an empty series is an error.
pub fn extrapolate_linear(series: &[f64]) -> Result<f64, AnalysisError> {
    let n = series.len();
    if n == 0 {
        return Err(AnalysisError::EmptySeries);
    }
    if n == 1 {
        return Ok(series[0]);
    }
    // Least-squares line over (0, y₀) … (n−1, y_{n−1}), evaluated at x = n.
    let xs_mean = (n as f64 - 1.0) / 2.0;
    let ys_mean = series.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in series.iter().enumerate() {
        let dx = i as f64 - xs_mean;
        num += dx * (y - ys_mean);
        den += dx * dx;
    }
    let slope = if den == 0.0 { 0.0 } else { num / den };
    Ok(ys_mean + slope * (n as f64 - xs_mean))
}

/// Selects `count` active users of `truth` uniformly at random with an
/// approximately equal number of positive and negative users (the paper's
/// target-selection protocol).
pub fn select_targets<R: Rng>(truth: &NetworkState, count: usize, rng: &mut R) -> Vec<NodeId> {
    let mut pos = truth.users_with(Opinion::Positive);
    let mut neg = truth.users_with(Opinion::Negative);
    shuffle(&mut pos, rng);
    shuffle(&mut neg, rng);
    let half = count / 2;
    let take_pos = half.min(pos.len());
    let take_neg = (count - take_pos).min(neg.len());
    let mut targets: Vec<NodeId> = pos[..take_pos].to_vec();
    targets.extend_from_slice(&neg[..take_neg]);
    // Top up from whichever side has leftovers if one side ran short.
    let mut extra: Vec<NodeId> = pos[take_pos..]
        .iter()
        .chain(neg[take_neg..].iter())
        .copied()
        .collect();
    shuffle(&mut extra, rng);
    targets.extend(extra.into_iter().take(count.saturating_sub(targets.len())));
    targets
}

fn shuffle<T, R: Rng>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Runs the randomized assignment search: draws `candidates` random opinion
/// assignments for `targets`, prices each flip-list through `eval`, and
/// returns the assignment whose distance is closest to the extrapolated
/// `d_star` (earliest minimum wins; NaN gaps never displace an incumbent).
///
/// `eval` receives the candidate as `(target, opinion)` pairs in target
/// order; composing with the known part of the current state (and, for
/// ordered SND, the anchor→known base flips) is the closure's job.
pub fn distance_based_prediction<F, R>(
    mut eval: F,
    d_star: f64,
    targets: &[NodeId],
    candidates: usize,
    rng: &mut R,
) -> Result<Vec<Opinion>, AnalysisError>
where
    F: FnMut(&[(NodeId, Opinion)]) -> f64,
    R: Rng,
{
    let mut best: Option<(f64, Vec<Opinion>)> = None;
    let mut flips: Vec<(NodeId, Opinion)> =
        targets.iter().map(|&t| (t, Opinion::Neutral)).collect();
    for _ in 0..candidates {
        for f in flips.iter_mut() {
            f.1 = random_opinion(rng);
        }
        let d = eval(&flips);
        let gap = (d - d_star).abs();
        if best.as_ref().is_none_or(|(g, _)| gap < *g) {
            best = Some((gap, flips.iter().map(|&(_, op)| op).collect()));
        }
    }
    match best {
        Some((_, assignment)) => Ok(assignment),
        None => Err(AnalysisError::NoCandidates),
    }
}

/// Batch variant of [`distance_based_prediction`]: all candidate flip-lists
/// are drawn up front (same RNG stream as the sequential search) and priced
/// in one call — so a batch-capable evaluator (e.g.
/// `snd_core::CandidateEvaluator::price_candidates`, which fans flip-lists
/// out over the thread pool against one shared anchor geometry) scores the
/// whole search in parallel. No candidate state is ever materialized.
/// Returns exactly the assignment the sequential search would pick.
pub fn distance_based_prediction_batch<F, R>(
    eval_batch: F,
    d_star: f64,
    targets: &[NodeId],
    candidates: usize,
    rng: &mut R,
) -> Result<Vec<Opinion>, AnalysisError>
where
    F: FnOnce(&[Vec<(NodeId, Opinion)>]) -> Vec<f64>,
    R: Rng,
{
    let mut assignments: Vec<Vec<(NodeId, Opinion)>> = (0..candidates)
        .map(|_| targets.iter().map(|&t| (t, random_opinion(rng))).collect())
        .collect();
    let distances = eval_batch(&assignments);
    if distances.len() != candidates {
        return Err(AnalysisError::BatchSizeMismatch {
            expected: candidates,
            got: distances.len(),
        });
    }
    let best = distances
        .iter()
        .map(|d| (d - d_star).abs())
        .enumerate()
        // A candidate replaces the incumbent only on a strictly smaller
        // gap — the sequential search's exact rule (earliest minimum wins,
        // NaN gaps never displace the incumbent).
        .fold(None::<(usize, f64)>, |best, (i, gap)| match best {
            Some((_, g)) if gap < g => Some((i, gap)),
            None => Some((i, gap)),
            _ => best,
        });
    match best {
        Some((i, _)) => Ok(assignments
            .swap_remove(i)
            .into_iter()
            .map(|(_, op)| op)
            .collect()),
        None => Err(AnalysisError::NoCandidates),
    }
}

/// Fraction of targets predicted correctly against the true state.
pub fn accuracy(
    predicted: &[Opinion],
    truth: &NetworkState,
    targets: &[NodeId],
) -> Result<f64, AnalysisError> {
    if predicted.len() != targets.len() {
        return Err(AnalysisError::LengthMismatch {
            predictions: predicted.len(),
            targets: targets.len(),
        });
    }
    if targets.is_empty() {
        return Ok(1.0);
    }
    let hits = targets
        .iter()
        .zip(predicted)
        .filter(|(&t, &p)| truth.opinion(t) == p)
        .count();
    Ok(hits as f64 / targets.len() as f64)
}

/// Mean / standard deviation summary (sample std, as the paper reports).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SummaryStats {
    /// Mean of the samples.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub std: f64,
}

impl SummaryStats {
    /// Summarizes a non-empty sample.
    pub fn from_samples(samples: &[f64]) -> Result<Self, AnalysisError> {
        if samples.is_empty() {
            return Err(AnalysisError::EmptySample);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let std = if samples.len() < 2 {
            0.0
        } else {
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        };
        Ok(SummaryStats { mean, std })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use snd_models::apply_flips;

    #[test]
    fn linear_extrapolation_extends_trend() {
        assert!((extrapolate_linear(&[1.0, 2.0]).unwrap() - 3.0).abs() < 1e-12);
        assert!((extrapolate_linear(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((extrapolate_linear(&[0.0, 1.0, 2.0]).unwrap() - 3.0).abs() < 1e-12);
        assert!((extrapolate_linear(&[5.0]).unwrap() - 5.0).abs() < 1e-12);
        assert_eq!(extrapolate_linear(&[]), Err(AnalysisError::EmptySeries));
    }

    #[test]
    fn target_selection_is_balanced() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut vals = vec![0i8; 100];
        for (i, item) in vals.iter_mut().enumerate().take(40) {
            *item = if i % 2 == 0 { 1 } else { -1 };
        }
        let truth = NetworkState::from_values(&vals);
        let targets = select_targets(&truth, 20, &mut rng);
        assert_eq!(targets.len(), 20);
        let pos = targets
            .iter()
            .filter(|&&t| truth.opinion(t) == Opinion::Positive)
            .count();
        assert_eq!(pos, 10);
        // All targets are active users.
        assert!(targets.iter().all(|&t| truth.opinion(t).is_active()));
    }

    #[test]
    fn target_selection_handles_one_sided_states() {
        let mut rng = SmallRng::seed_from_u64(5);
        let truth = NetworkState::from_values(&[1, 1, 1, 1, 0, 0]);
        let targets = select_targets(&truth, 4, &mut rng);
        assert_eq!(targets.len(), 4);
    }

    #[test]
    fn prediction_finds_the_planted_assignment() {
        // Distance oracle: |candidate ∆ from known truth| vs d* = 0 forces
        // the exact planted assignment to win (with enough candidates).
        let mut rng = SmallRng::seed_from_u64(6);
        let truth = NetworkState::from_values(&[1, -1, 1, 0, 0]);
        let targets = vec![0u32, 1, 2];
        let mut known = truth.clone();
        for &t in &targets {
            known.set(t, Opinion::Neutral);
        }
        let eval =
            |flips: &[(NodeId, Opinion)]| apply_flips(&known, flips).diff_count(&truth) as f64;
        let predicted = distance_based_prediction(eval, 0.0, &targets, 200, &mut rng).unwrap();
        assert_eq!(accuracy(&predicted, &truth, &targets).unwrap(), 1.0);
    }

    #[test]
    fn zero_candidates_is_an_error_not_a_panic() {
        let mut rng = SmallRng::seed_from_u64(7);
        let err = distance_based_prediction(|_| 0.0, 0.0, &[0u32], 0, &mut rng);
        assert_eq!(err, Err(AnalysisError::NoCandidates));
        let err = distance_based_prediction_batch(|_| Vec::new(), 0.0, &[0u32], 0, &mut rng);
        assert_eq!(err, Err(AnalysisError::NoCandidates));
    }

    #[test]
    fn short_batch_evaluator_is_reported() {
        let mut rng = SmallRng::seed_from_u64(8);
        let err = distance_based_prediction_batch(|_| vec![1.0], 0.0, &[0u32], 3, &mut rng);
        assert_eq!(
            err,
            Err(AnalysisError::BatchSizeMismatch {
                expected: 3,
                got: 1
            })
        );
    }

    #[test]
    fn batch_prediction_matches_sequential_search() {
        // Same seed, same evaluator => identical chosen assignment.
        let truth = NetworkState::from_values(&[1, -1, 1, 0, 0, -1]);
        let targets = vec![0u32, 1, 2, 5];
        let mut known = truth.clone();
        for &t in &targets {
            known.set(t, Opinion::Neutral);
        }
        let eval =
            |flips: &[(NodeId, Opinion)]| apply_flips(&known, flips).diff_count(&truth) as f64;
        let d_star = 1.5;
        let mut rng_a = SmallRng::seed_from_u64(11);
        let sequential = distance_based_prediction(eval, d_star, &targets, 40, &mut rng_a).unwrap();
        let mut rng_b = SmallRng::seed_from_u64(11);
        let batch = distance_based_prediction_batch(
            |cands| cands.iter().map(|c| eval(c)).collect(),
            d_star,
            &targets,
            40,
            &mut rng_b,
        )
        .unwrap();
        assert_eq!(sequential, batch);
    }

    #[test]
    fn summary_stats_match_hand_computation() {
        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        let single = SummaryStats::from_samples(&[4.2]).unwrap();
        assert_eq!(single.std, 0.0);
        assert_eq!(
            SummaryStats::from_samples(&[]),
            Err(AnalysisError::EmptySample)
        );
    }
}
