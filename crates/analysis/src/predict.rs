//! Distance-based opinion prediction (§6.3).
//!
//! Given recent complete states `G_{−T} … G_{−1}` and an incomplete current
//! state `G_0` (a set of target users with unknown opinions), the predictor
//!
//! 1. extrapolates the adjacent-state distance series to an estimate `d*`
//!    of `dist(G_{−1}, G_0)`;
//! 2. draws random opinion assignments for the target users;
//! 3. keeps the assignment whose completed state sits closest to `d*`.
//!
//! The same harness drives every distance measure; SND uses
//! [`crate::SndDistance`] / `OrderedSnd` so candidate evaluations share SSSP
//! rows.

use rand::Rng;
use snd_graph::NodeId;
use snd_models::dynamics::random_opinion;
use snd_models::{NetworkState, Opinion};

/// Linear extrapolation of the next value of a series (least squares over
/// all points; with two points this is `2·d₂ − d₁`). Series must be
/// non-empty; a single point extrapolates to itself.
pub fn extrapolate_linear(series: &[f64]) -> f64 {
    let n = series.len();
    assert!(n > 0, "cannot extrapolate an empty series");
    if n == 1 {
        return series[0];
    }
    // Least-squares line over (0, y₀) … (n−1, y_{n−1}), evaluated at x = n.
    let xs_mean = (n as f64 - 1.0) / 2.0;
    let ys_mean = series.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in series.iter().enumerate() {
        let dx = i as f64 - xs_mean;
        num += dx * (y - ys_mean);
        den += dx * dx;
    }
    let slope = if den == 0.0 { 0.0 } else { num / den };
    ys_mean + slope * (n as f64 - xs_mean)
}

/// Selects `count` active users of `truth` uniformly at random with an
/// approximately equal number of positive and negative users (the paper's
/// target-selection protocol).
pub fn select_targets<R: Rng>(truth: &NetworkState, count: usize, rng: &mut R) -> Vec<NodeId> {
    let mut pos = truth.users_with(Opinion::Positive);
    let mut neg = truth.users_with(Opinion::Negative);
    shuffle(&mut pos, rng);
    shuffle(&mut neg, rng);
    let half = count / 2;
    let take_pos = half.min(pos.len());
    let take_neg = (count - take_pos).min(neg.len());
    let mut targets: Vec<NodeId> = pos[..take_pos].to_vec();
    targets.extend_from_slice(&neg[..take_neg]);
    // Top up from whichever side has leftovers if one side ran short.
    let mut extra: Vec<NodeId> = pos[take_pos..]
        .iter()
        .chain(neg[take_neg..].iter())
        .copied()
        .collect();
    shuffle(&mut extra, rng);
    targets.extend(extra.into_iter().take(count.saturating_sub(targets.len())));
    targets
}

fn shuffle<T, R: Rng>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Runs the randomized assignment search: evaluates `candidates` random
/// opinion assignments for `targets` on top of `known` (the current state
/// with target opinions blanked) and returns the assignment whose distance
/// — computed by `eval` against the most recent complete state — is closest
/// to the extrapolated `d_star`.
pub fn distance_based_prediction<F, R>(
    mut eval: F,
    d_star: f64,
    known: &NetworkState,
    targets: &[NodeId],
    candidates: usize,
    rng: &mut R,
) -> Vec<Opinion>
where
    F: FnMut(&NetworkState) -> f64,
    R: Rng,
{
    assert!(candidates > 0, "need at least one candidate");
    let mut best: Option<(f64, Vec<Opinion>)> = None;
    let mut candidate_state = known.clone();
    for _ in 0..candidates {
        let assignment: Vec<Opinion> = targets.iter().map(|_| random_opinion(rng)).collect();
        for (&t, &op) in targets.iter().zip(&assignment) {
            candidate_state.set(t, op);
        }
        let d = eval(&candidate_state);
        let gap = (d - d_star).abs();
        if best.as_ref().is_none_or(|(g, _)| gap < *g) {
            best = Some((gap, assignment));
        }
    }
    best.expect("candidates > 0").1
}

/// Batch variant of [`distance_based_prediction`]: all candidate
/// assignments are drawn up front (same RNG stream as the sequential
/// search), materialized, and priced in one call — so a batch-capable
/// evaluator (e.g. `OrderedSnd::distances_to`, which fans candidates out
/// over the thread pool against one shared row cache) scores the whole
/// search in parallel. Returns exactly the assignment the sequential
/// search would pick.
pub fn distance_based_prediction_batch<F, R>(
    eval_batch: F,
    d_star: f64,
    known: &NetworkState,
    targets: &[NodeId],
    candidates: usize,
    rng: &mut R,
) -> Vec<Opinion>
where
    F: FnOnce(&[NetworkState]) -> Vec<f64>,
    R: Rng,
{
    assert!(candidates > 0, "need at least one candidate");
    let assignments: Vec<Vec<Opinion>> = (0..candidates)
        .map(|_| targets.iter().map(|_| random_opinion(rng)).collect())
        .collect();
    let states: Vec<NetworkState> = assignments
        .iter()
        .map(|assignment| {
            let mut s = known.clone();
            for (&t, &op) in targets.iter().zip(assignment) {
                s.set(t, op);
            }
            s
        })
        .collect();
    let distances = eval_batch(&states);
    assert_eq!(distances.len(), candidates, "one distance per candidate");
    let best = distances
        .iter()
        .map(|d| (d - d_star).abs())
        .enumerate()
        // A candidate replaces the incumbent only on a strictly smaller
        // gap — the sequential search's exact rule (earliest minimum wins,
        // NaN gaps never displace the incumbent).
        .fold(None::<(usize, f64)>, |best, (i, gap)| match best {
            Some((_, g)) if gap < g => Some((i, gap)),
            None => Some((i, gap)),
            _ => best,
        })
        .expect("candidates > 0")
        .0;
    assignments.into_iter().nth(best).expect("index in range")
}

/// Fraction of targets predicted correctly against the true state.
pub fn accuracy(predicted: &[Opinion], truth: &NetworkState, targets: &[NodeId]) -> f64 {
    assert_eq!(predicted.len(), targets.len(), "one prediction per target");
    if targets.is_empty() {
        return 1.0;
    }
    let hits = targets
        .iter()
        .zip(predicted)
        .filter(|(&t, &p)| truth.opinion(t) == p)
        .count();
    hits as f64 / targets.len() as f64
}

/// Mean / standard deviation summary (sample std, as the paper reports).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SummaryStats {
    /// Mean of the samples.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub std: f64,
}

impl SummaryStats {
    /// Summarizes a non-empty sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty());
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let std = if samples.len() < 2 {
            0.0
        } else {
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        };
        SummaryStats { mean, std }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn linear_extrapolation_extends_trend() {
        assert!((extrapolate_linear(&[1.0, 2.0]) - 3.0).abs() < 1e-12);
        assert!((extrapolate_linear(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((extrapolate_linear(&[0.0, 1.0, 2.0]) - 3.0).abs() < 1e-12);
        assert!((extrapolate_linear(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn target_selection_is_balanced() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut vals = vec![0i8; 100];
        for (i, item) in vals.iter_mut().enumerate().take(40) {
            *item = if i % 2 == 0 { 1 } else { -1 };
        }
        let truth = NetworkState::from_values(&vals);
        let targets = select_targets(&truth, 20, &mut rng);
        assert_eq!(targets.len(), 20);
        let pos = targets
            .iter()
            .filter(|&&t| truth.opinion(t) == Opinion::Positive)
            .count();
        assert_eq!(pos, 10);
        // All targets are active users.
        assert!(targets.iter().all(|&t| truth.opinion(t).is_active()));
    }

    #[test]
    fn target_selection_handles_one_sided_states() {
        let mut rng = SmallRng::seed_from_u64(5);
        let truth = NetworkState::from_values(&[1, 1, 1, 1, 0, 0]);
        let targets = select_targets(&truth, 4, &mut rng);
        assert_eq!(targets.len(), 4);
    }

    #[test]
    fn prediction_finds_the_planted_assignment() {
        // Distance oracle: |candidate ∆ from known truth| vs d* = 0 forces
        // the exact planted assignment to win (with enough candidates).
        let mut rng = SmallRng::seed_from_u64(6);
        let truth = NetworkState::from_values(&[1, -1, 1, 0, 0]);
        let targets = vec![0u32, 1, 2];
        let mut known = truth.clone();
        for &t in &targets {
            known.set(t, Opinion::Neutral);
        }
        let eval = |s: &NetworkState| s.diff_count(&truth) as f64;
        let predicted = distance_based_prediction(eval, 0.0, &known, &targets, 200, &mut rng);
        assert_eq!(accuracy(&predicted, &truth, &targets), 1.0);
    }

    #[test]
    fn batch_prediction_matches_sequential_search() {
        // Same seed, same evaluator => identical chosen assignment.
        let truth = NetworkState::from_values(&[1, -1, 1, 0, 0, -1]);
        let targets = vec![0u32, 1, 2, 5];
        let mut known = truth.clone();
        for &t in &targets {
            known.set(t, Opinion::Neutral);
        }
        let eval = |s: &NetworkState| s.diff_count(&truth) as f64;
        let d_star = 1.5;
        let mut rng_a = SmallRng::seed_from_u64(11);
        let sequential = distance_based_prediction(eval, d_star, &known, &targets, 40, &mut rng_a);
        let mut rng_b = SmallRng::seed_from_u64(11);
        let batch = distance_based_prediction_batch(
            |states| states.iter().map(eval).collect(),
            d_star,
            &known,
            &targets,
            40,
            &mut rng_b,
        );
        assert_eq!(sequential, batch);
    }

    #[test]
    fn summary_stats_match_hand_computation() {
        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        let single = SummaryStats::from_samples(&[4.2]);
        assert_eq!(single.std, 0.0);
    }
}
