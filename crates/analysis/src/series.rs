//! Distance-series post-processing.
//!
//! The anomaly experiments (§6.2) compare measures after normalizing each
//! adjacent-state distance by the number of active users and scaling the
//! series to `[0, 1]`, so measures with different magnitudes can share a
//! plot and a detector.

use snd_models::NetworkState;

/// Divides each adjacent-state distance by the number of users active at
/// the transition's later state. `distances.len()` must be
/// `states.len() − 1`.
pub fn normalize_by_activity(distances: &[f64], states: &[NetworkState]) -> Vec<f64> {
    assert_eq!(
        distances.len() + 1,
        states.len(),
        "one distance per adjacent state pair"
    );
    distances
        .iter()
        .enumerate()
        .map(|(t, &d)| {
            let active = states[t + 1].active_count();
            if active == 0 {
                d
            } else {
                d / active as f64
            }
        })
        .collect()
}

/// Divides each adjacent-state distance by the number of users whose
/// opinion changed in that transition — the "cost per opinion change"
/// normalization. Under it a coordinate-wise measure like Hamming is
/// constant by construction, while propagation-aware measures spike exactly
/// when changes become structurally implausible (the Fig. 7 shape).
pub fn normalize_by_change(distances: &[f64], states: &[NetworkState]) -> Vec<f64> {
    assert_eq!(
        distances.len() + 1,
        states.len(),
        "one distance per adjacent state pair"
    );
    distances
        .iter()
        .enumerate()
        .map(|(t, &d)| {
            let changed = states[t].diff_count(&states[t + 1]);
            if changed == 0 {
                d
            } else {
                d / changed as f64
            }
        })
        .collect()
}

/// Scales a series so its maximum is 1 (no-op for all-zero input).
pub fn scale_to_unit(series: &[f64]) -> Vec<f64> {
    let max = series.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return series.to_vec();
    }
    series.iter().map(|&x| x / max).collect()
}

/// Computes a full processed series (normalize by per-transition change
/// count + scale) from raw distances.
pub fn processed_series(distances: &[f64], states: &[NetworkState]) -> Vec<f64> {
    scale_to_unit(&normalize_by_change(distances, states))
}

/// Processed series straight from a batch all-pairs matrix: reads the
/// adjacent-transition distances off the superdiagonal and applies the
/// standard normalization. Lets workloads that already priced the full
/// matrix (clustering + anomaly detection over the same snapshots) reuse
/// it instead of recomputing the series.
pub fn processed_adjacent(matrix: &snd_core::DistanceMatrix, states: &[NetworkState]) -> Vec<f64> {
    processed_series(&matrix.adjacent(), states)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_divides_by_later_activity() {
        let states = vec![
            NetworkState::from_values(&[0, 0, 0, 0]),
            NetworkState::from_values(&[1, 0, 0, 0]),
            NetworkState::from_values(&[1, -1, 0, 0]),
        ];
        let norm = normalize_by_activity(&[3.0, 4.0], &states);
        assert_eq!(norm, vec![3.0, 2.0]);
    }

    #[test]
    fn zero_activity_passes_through() {
        let states = vec![
            NetworkState::from_values(&[1, 0]),
            NetworkState::from_values(&[0, 0]),
        ];
        assert_eq!(normalize_by_activity(&[5.0], &states), vec![5.0]);
    }

    #[test]
    fn scaling_maps_max_to_one() {
        assert_eq!(scale_to_unit(&[1.0, 4.0, 2.0]), vec![0.25, 1.0, 0.5]);
        assert_eq!(scale_to_unit(&[0.0, 0.0]), vec![0.0, 0.0]);
    }
}
