//! Structured errors for the analysis workloads.
//!
//! The prediction and intervention entry points are driven from the CLI on
//! user-supplied data, so degenerate inputs (an empty distance series, a
//! zero-candidate search, an empty action pool) are *caller* errors, not
//! invariant violations — they surface as [`AnalysisError`] values the CLI
//! renders instead of panicking (the workspace `no-unwrap` lint rule covers
//! this crate's library code).

use std::fmt;

/// A degenerate input to an analysis workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// A distance series with no points cannot be extrapolated.
    EmptySeries,
    /// A candidate search over zero candidates has no answer.
    NoCandidates,
    /// A batch evaluator returned a different number of distances than it
    /// was given candidates.
    BatchSizeMismatch {
        /// Candidates handed to the evaluator.
        expected: usize,
        /// Distances it returned.
        got: usize,
    },
    /// A summary over zero samples has no mean.
    EmptySample,
    /// Predictions and targets must pair up one-to-one.
    LengthMismatch {
        /// Number of predictions supplied.
        predictions: usize,
        /// Number of target users.
        targets: usize,
    },
    /// The intervention search was configured with an empty action pool.
    NoActions,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::EmptySeries => write!(f, "cannot extrapolate an empty series"),
            AnalysisError::NoCandidates => write!(f, "need at least one candidate"),
            AnalysisError::BatchSizeMismatch { expected, got } => write!(
                f,
                "batch evaluator returned {got} distances for {expected} candidates"
            ),
            AnalysisError::EmptySample => write!(f, "cannot summarize an empty sample"),
            AnalysisError::LengthMismatch {
                predictions,
                targets,
            } => write!(f, "{predictions} predictions for {targets} targets"),
            AnalysisError::NoActions => {
                write!(f, "intervention search has an empty action pool")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}
