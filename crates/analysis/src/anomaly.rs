//! Anomaly scoring over distance series (§6.2).
//!
//! A transition is anomalous when its distance spikes relative to both
//! neighbors: `S_t = (d_t − d_{t−1}) + (d_t − d_{t+1})`. Boundary
//! transitions score zero — a spike cannot be confirmed with only one
//! neighbor (the paper likewise leaves the last quarter unmarked).

/// Anomaly scores per transition. Input is the processed distance series
/// (one value per adjacent state pair); output has the same length, with
/// zero scores at both boundaries.
pub fn anomaly_scores(distances: &[f64]) -> Vec<f64> {
    let n = distances.len();
    (0..n)
        .map(|t| {
            if t == 0 || t + 1 == n {
                return 0.0;
            }
            (distances[t] - distances[t - 1]) + (distances[t] - distances[t + 1])
        })
        .collect()
}

/// Anomaly scores straight from a batch all-pairs matrix over the series'
/// snapshots: superdiagonal distances → standard normalization → spike
/// scores. The one-call path for workloads driven by
/// `SndEngine::pairwise_distances`.
pub fn anomaly_scores_from_matrix(
    matrix: &snd_core::DistanceMatrix,
    states: &[snd_models::NetworkState],
) -> Vec<f64> {
    anomaly_scores(&crate::series::processed_adjacent(matrix, states))
}

/// Summary of a labelled detection run: what was flagged, how much of it
/// was right, and the ranking quality — the per-scenario report the
/// simulate → anomaly workflow prints.
#[derive(Clone, Debug)]
pub struct DetectionReport {
    /// The `k` flagged transitions, highest score first.
    pub flagged: Vec<usize>,
    /// How many flagged transitions are labelled anomalous.
    pub hits: usize,
    /// Number of transitions flagged (`min(k, transitions)`).
    pub k: usize,
    /// Labelled anomalies in the series.
    pub positives: usize,
    /// ROC AUC of the full score ranking (0.5 = chance); `None` when the
    /// labels are one-class (no ranking to grade).
    pub auc: Option<f64>,
}

/// Grades anomaly `scores` against ground-truth `labels`: top-`k` flags
/// with hit count, plus the AUC of the full ranking. `labels` may be
/// shorter than `scores` (missing entries count as normal).
pub fn evaluate_detection(scores: &[f64], labels: &[bool], k: usize) -> DetectionReport {
    let flagged = top_k_anomalies(scores, k);
    let is_anomalous = |t: usize| labels.get(t).copied().unwrap_or(false);
    let hits = flagged.iter().filter(|&&t| is_anomalous(t)).count();
    let positives = (0..scores.len()).filter(|&t| is_anomalous(t)).count();
    let auc = if positives > 0 && positives < scores.len() {
        let full: Vec<bool> = (0..scores.len()).map(is_anomalous).collect();
        Some(crate::roc::auc(&crate::roc::roc_curve(scores, &full)))
    } else {
        None
    };
    DetectionReport {
        k: flagged.len(),
        flagged,
        hits,
        positives,
        auc,
    }
}

/// Indices of the `k` highest-scoring transitions, in decreasing score
/// order (stable on ties by index).
pub fn top_k_anomalies(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    // total_cmp: NaN scores order deterministically (above +inf) instead
    // of collapsing to Equal, which would make the comparator
    // non-transitive and the ranking permutation arbitrary.
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_scores_highest() {
        let d = [0.2, 0.2, 1.0, 0.2, 0.2];
        let s = anomaly_scores(&d);
        let top = top_k_anomalies(&s, 1);
        assert_eq!(top, vec![2]);
        assert!((s[2] - 1.6).abs() < 1e-12);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[4], 0.0);
    }

    #[test]
    fn flat_series_has_zero_scores() {
        let s = anomaly_scores(&[0.5; 6]);
        assert!(s.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn boundary_transitions_score_zero() {
        let s = anomaly_scores(&[1.0, 0.5, 0.0]);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[2], 0.0);
    }

    #[test]
    fn detection_report_counts_hits_and_grades_ranking() {
        let scores = [0.0, 0.1, 2.0, 0.1, 1.5, 0.0];
        let labels = [false, false, true, false, true, false];
        let report = evaluate_detection(&scores, &labels, 2);
        assert_eq!(report.flagged, vec![2, 4]);
        assert_eq!(report.hits, 2);
        assert_eq!(report.positives, 2);
        assert!(report.auc.expect("two-class labels") > 0.99);

        // Short label vectors: the tail counts as normal.
        let report = evaluate_detection(&scores, &labels[..3], 2);
        assert_eq!(report.hits, 1);

        // One-class labels carry no ranking signal.
        assert!(evaluate_detection(&scores, &[false; 6], 2).auc.is_none());
    }

    #[test]
    fn nan_score_keeps_ranking_deterministic_and_auc_finite() {
        // Regression for the partial_cmp ranking: a NaN score must not
        // panic or scramble the order. Under total_cmp a NaN sorts first
        // (above +inf) and everything else keeps its relative order.
        let scores = [0.1, f64::NAN, 0.9, 0.5];
        assert_eq!(top_k_anomalies(&scores, 4), vec![1, 2, 3, 0]);
        // Same input twice: identical ranking (determinism, not chance).
        assert_eq!(top_k_anomalies(&scores, 4), top_k_anomalies(&scores, 4));

        let report = evaluate_detection(&scores, &[false, false, true, false], 2);
        assert_eq!(report.k, 2);
        assert_eq!(report.flagged, vec![1, 2]);
        assert_eq!(report.hits, 1);
        assert!(report.auc.expect("two-class labels").is_finite());
    }

    #[test]
    fn top_k_is_ordered_and_bounded() {
        let s = [0.1, 0.9, 0.5, 0.9];
        let top = top_k_anomalies(&s, 3);
        assert_eq!(top, vec![1, 3, 2]);
        assert_eq!(top_k_anomalies(&s, 10).len(), 4);
    }
}
