//! Metric-space analysis of network states — the paper's §9 future-work
//! applications: clustering, classification and nearest-neighbor search of
//! network states under SND (or any [`StateDistance`]).
//!
//! SND's metricity (Theorem 3) is what makes these meaningful: k-medoids
//! over a metric stays well-defined, and 1-NN classification inherits the
//! usual metric-space guarantees.

use snd_baselines::StateDistance;
use snd_models::NetworkState;

/// Total order over distances in which NaN — of either sign — sits above
/// every real value, so a poisoned distance (e.g. from an
/// unreachable-node geometry) loses every `min` instead of panicking.
/// (Bare `f64::total_cmp` would order a *negative* NaN below −∞ and let
/// it win.)
fn distance_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    let canon = |x: f64| if x.is_nan() { f64::INFINITY } else { x };
    canon(a).total_cmp(&canon(b))
}

/// Symmetric pairwise distance matrix over a set of states (row-major,
/// `states.len()²`). Delegates to the measure's batch path
/// ([`StateDistance::pairwise`]) — for SND that is the cached, parallel
/// all-pairs pipeline of `SndEngine::pairwise_distances`.
pub fn pairwise_distances<D: StateDistance>(dist: &D, states: &[NetworkState]) -> Vec<Vec<f64>> {
    dist.pairwise(states)
}

/// Result of k-medoids clustering.
#[derive(Clone, Debug)]
pub struct MedoidClustering {
    /// Indices of the chosen medoid states.
    pub medoids: Vec<usize>,
    /// Cluster assignment per state (index into `medoids`).
    pub assignment: Vec<usize>,
    /// Total within-cluster distance.
    pub cost: f64,
}

/// k-medoids (PAM-style alternation) over a precomputed distance matrix.
///
/// Deterministic: initial medoids are chosen by maximin spreading from the
/// state with the smallest total distance to all others; swaps proceed
/// until no single-swap improvement exists (or `max_iters`).
///
/// A NaN distance (e.g. from an unreachable-node geometry upstream) never
/// panics the run — [`distance_cmp`] orders NaN above every real distance,
/// so it simply loses every `min`.
pub fn k_medoids(distances: &[Vec<f64>], k: usize, max_iters: usize) -> MedoidClustering {
    let n = distances.len();
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");

    // Maximin initialization from the 1-medoid optimum.
    let first = (0..n)
        .min_by(|&a, &b| {
            let sa: f64 = distances[a].iter().sum();
            let sb: f64 = distances[b].iter().sum();
            distance_cmp(sa, sb)
        })
        .unwrap_or(0);
    let mut medoids = vec![first];
    while medoids.len() < k {
        let next = (0..n).filter(|i| !medoids.contains(i)).max_by(|&a, &b| {
            let da = medoids
                .iter()
                .map(|&m| distances[a][m])
                .fold(f64::INFINITY, f64::min);
            let db = medoids
                .iter()
                .map(|&m| distances[b][m])
                .fold(f64::INFINITY, f64::min);
            distance_cmp(da, db)
        });
        match next {
            Some(i) => medoids.push(i),
            None => break,
        }
    }

    let assign = |medoids: &[usize]| -> (Vec<usize>, f64) {
        let mut assignment = vec![0usize; n];
        let mut cost = 0.0;
        for i in 0..n {
            let (best, d) = medoids
                .iter()
                .enumerate()
                .map(|(c, &m)| (c, distances[i][m]))
                .min_by(|a, b| distance_cmp(a.1, b.1))
                // lint:allow(no-unwrap) medoids is seeded with one element before assign() is ever called, so min_by sees a non-empty iterator
                .expect("k >= 1");
            assignment[i] = best;
            cost += d;
        }
        (assignment, cost)
    };

    let (mut assignment, mut cost) = assign(&medoids);
    for _ in 0..max_iters {
        let mut improved = false;
        for c in 0..medoids.len() {
            for candidate in 0..n {
                if medoids.contains(&candidate) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[c] = candidate;
                let (trial_assignment, trial_cost) = assign(&trial);
                if trial_cost + 1e-12 < cost {
                    medoids = trial;
                    assignment = trial_assignment;
                    cost = trial_cost;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    MedoidClustering {
        medoids,
        assignment,
        cost,
    }
}

/// Index of the state in `haystack` closest to `query` (linear scan).
/// NaN distances order above every real distance ([`distance_cmp`])
/// instead of panicking.
pub fn nearest_neighbor<D: StateDistance>(
    dist: &D,
    haystack: &[NetworkState],
    query: &NetworkState,
) -> Option<(usize, f64)> {
    haystack
        .iter()
        .enumerate()
        .map(|(i, s)| (i, dist.distance(query, s)))
        .min_by(|a, b| distance_cmp(a.1, b.1))
}

/// 1-nearest-neighbor classification: returns the label of the closest
/// labelled exemplar. NaN distances order above every real distance
/// ([`distance_cmp`]) instead of panicking.
pub fn classify_1nn<D: StateDistance, L: Clone>(
    dist: &D,
    exemplars: &[(NetworkState, L)],
    query: &NetworkState,
) -> Option<L> {
    exemplars
        .iter()
        .map(|(s, l)| (dist.distance(query, s), l))
        .min_by(|a, b| distance_cmp(a.0, b.0))
        .map(|(_, l)| l.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snd_baselines::Hamming;

    fn state(v: &[i8]) -> NetworkState {
        NetworkState::from_values(v)
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_zero_diagonal() {
        let states = vec![state(&[1, 0, 0]), state(&[0, 1, 0]), state(&[1, 1, 0])];
        let m = pairwise_distances(&Hamming, &states);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
        assert_eq!(m[0][1], 2.0);
        assert_eq!(m[0][2], 1.0);
    }

    #[test]
    fn k_medoids_recovers_planted_groups() {
        // Two tight groups of states far apart in Hamming distance.
        let group_a = [
            state(&[1, 1, 1, 1, 0, 0, 0, 0]),
            state(&[1, 1, 1, 0, 0, 0, 0, 0]),
            state(&[1, 1, 1, 1, 1, 0, 0, 0]),
        ];
        let group_b = [
            state(&[0, 0, 0, 0, -1, -1, -1, -1]),
            state(&[0, 0, 0, 0, -1, -1, -1, 0]),
            state(&[0, 0, 0, 0, 0, -1, -1, -1]),
        ];
        let states: Vec<NetworkState> = group_a.iter().chain(group_b.iter()).cloned().collect();
        let m = pairwise_distances(&Hamming, &states);
        let clustering = k_medoids(&m, 2, 20);
        // All of group A shares a cluster; all of group B the other.
        let a_cluster = clustering.assignment[0];
        assert!(clustering.assignment[..3].iter().all(|&c| c == a_cluster));
        let b_cluster = clustering.assignment[3];
        assert_ne!(a_cluster, b_cluster);
        assert!(clustering.assignment[3..].iter().all(|&c| c == b_cluster));
    }

    #[test]
    fn k_medoids_single_cluster_minimizes_total_distance() {
        let states = vec![state(&[1, 0, 0]), state(&[1, 1, 0]), state(&[1, 1, 1])];
        let m = pairwise_distances(&Hamming, &states);
        let clustering = k_medoids(&m, 1, 10);
        // The middle state is the 1-medoid optimum (total distance 2).
        assert_eq!(clustering.medoids, vec![1]);
        assert_eq!(clustering.cost, 2.0);
    }

    #[test]
    fn nearest_neighbor_and_classification() {
        let exemplars = vec![
            (state(&[1, 1, 0, 0]), "positive-camp"),
            (state(&[0, 0, -1, -1]), "negative-camp"),
        ];
        let query = state(&[1, 0, 0, 0]);
        let label = classify_1nn(&Hamming, &exemplars, &query).unwrap();
        assert_eq!(label, "positive-camp");

        let haystack: Vec<NetworkState> = exemplars.iter().map(|(s, _)| s.clone()).collect();
        let (idx, d) = nearest_neighbor(&Hamming, &haystack, &query).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn nan_distances_do_not_panic_clustering() {
        // Regression: a single NaN distance (e.g. from an unreachable-node
        // geometry) used to panic `partial_cmp(..).unwrap()` inside
        // k_medoids. It must now be ordered past every real distance —
        // including the *negative* NaN that 0.0/0.0 produces on x86-64,
        // which bare `total_cmp` would order below −∞ and let win.
        for nan in [f64::NAN, f64::NAN.copysign(-1.0)] {
            let mut m = vec![
                vec![0.0, 1.0, 9.0, 9.5],
                vec![1.0, 0.0, 8.0, 9.0],
                vec![9.0, 8.0, 0.0, 1.5],
                vec![9.5, 9.0, 1.5, 0.0],
            ];
            m[1][3] = nan;
            m[3][1] = nan;
            let clustering = k_medoids(&m, 2, 20);
            assert_eq!(clustering.assignment.len(), 4);
            // The two tight pairs still separate; the NaN entry never wins
            // a nearest-medoid comparison.
            assert_eq!(clustering.assignment[0], clustering.assignment[1]);
            assert_eq!(clustering.assignment[2], clustering.assignment[3]);
            assert_ne!(clustering.assignment[0], clustering.assignment[2]);
        }
    }

    #[test]
    fn nan_distances_do_not_panic_nearest_neighbor_or_classification() {
        /// Returns a negative NaN (as 0.0/0.0 yields on x86-64) against
        /// one poisoned state, Hamming otherwise.
        struct PoisonedHamming(NetworkState);
        impl StateDistance for PoisonedHamming {
            fn distance(&self, a: &NetworkState, b: &NetworkState) -> f64 {
                if *a == self.0 || *b == self.0 {
                    f64::NAN.copysign(-1.0)
                } else {
                    Hamming.distance(a, b)
                }
            }
            fn name(&self) -> &'static str {
                "poisoned-hamming"
            }
        }
        let poisoned = state(&[-1, -1, -1, -1]);
        let dist = PoisonedHamming(poisoned.clone());
        let haystack = vec![poisoned.clone(), state(&[1, 1, 0, 0]), state(&[1, 0, 0, 0])];
        let query = state(&[1, 1, 1, 0]);
        let (idx, d) = nearest_neighbor(&dist, &haystack, &query).unwrap();
        assert_eq!(idx, 1, "finite distances beat NaN");
        assert_eq!(d, 1.0);
        let exemplars = vec![(poisoned, "poisoned"), (state(&[1, 1, 0, 0]), "clean")];
        assert_eq!(classify_1nn(&dist, &exemplars, &query), Some("clean"));
        // All-NaN input still returns rather than panicking.
        let only_poisoned = vec![dist.0.clone()];
        let (idx, d) = nearest_neighbor(&dist, &only_poisoned, &query).unwrap();
        assert_eq!(idx, 0);
        assert!(d.is_nan());
    }

    #[test]
    fn k_equals_n_gives_zero_cost() {
        let states = vec![state(&[1, 0]), state(&[0, 1]), state(&[-1, 0])];
        let m = pairwise_distances(&Hamming, &states);
        let clustering = k_medoids(&m, 3, 10);
        assert_eq!(clustering.cost, 0.0);
        let mut sorted = clustering.medoids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
