//! Applications of SND: anomaly detection and user opinion prediction
//! (paper §6.2–§6.4).
//!
//! * [`series`] — distance-series post-processing (activity normalization,
//!   unit scaling) shared by all measures;
//! * [`anomaly`] — the anomaly score `S_t = (d_t − d_{t−1}) + (d_t −
//!   d_{t+1})` and spike detection;
//! * [`roc`] — ROC curves / AUC / TPR-at-FPR for ranking-based detection;
//! * [`predict`] — the distance-based opinion predictor (series
//!   extrapolation + randomized assignment search over flip-list
//!   candidates) and the experiment harness shared with the non-distance
//!   baselines;
//! * [`intervene`] — greedy/beam intervention search (edge edits,
//!   stubborn-agent placement) scored by expected delta-SND drift over
//!   simulated rollouts;
//! * [`error`] — structured [`AnalysisError`]s the CLI surfaces instead
//!   of panics;
//! * [`cluster`] — the §9 future-work applications: k-medoids clustering,
//!   1-NN classification and nearest-neighbor search of network states in
//!   the metric space SND induces;
//! * [`resume`] — checkpoint-backed pairwise/series entry points over the
//!   tile-based shard subsystem (`snd_core::shard`): interrupted runs
//!   resume from completed tiles;
//! * [`snd_distance`] — adapters implementing the common
//!   [`StateDistance`](snd_baselines::StateDistance) trait for the SND
//!   engine.

pub mod anomaly;
pub mod cluster;
pub mod error;
pub mod intervene;
pub mod predict;
pub mod resume;
pub mod roc;
pub mod series;
pub mod snd_distance;

pub use anomaly::{
    anomaly_scores, anomaly_scores_from_matrix, evaluate_detection, top_k_anomalies,
    DetectionReport,
};
pub use cluster::{
    classify_1nn, k_medoids, nearest_neighbor, pairwise_distances, MedoidClustering,
};
pub use error::AnalysisError;
pub use intervene::{
    search_interventions, Intervention, InterventionConfig, InterventionPlan, PlannedAction,
};
pub use predict::{
    accuracy, distance_based_prediction, distance_based_prediction_batch, extrapolate_linear,
    select_targets, SummaryStats,
};
pub use resume::{pairwise_distances_checkpointed, series_distances_checkpointed};
pub use roc::{auc, roc_curve, tpr_at_fpr, RocPoint};
pub use series::{normalize_by_activity, normalize_by_change, processed_adjacent, scale_to_unit};
pub use snd_distance::SndDistance;
