//! Intervention search: greedy/beam planning of network edits that calm
//! polar opinion dynamics, scored by expected **delta-SND drift**.
//!
//! The workload the delta-priced evaluator unlocks (ROADMAP): given a
//! graph, a dynamics model, and a current state, find a budget-`K` plan of
//! typed [`Intervention`]s — edge insertions/deletions or stubborn-agent
//! placements (the PR 4 curmudgeon mask made into an *action*: the node is
//! pinned to one opinion for the rest of the run) — minimizing the
//! expected drift of the network, where drift is the sum of ordered SND
//! over the transitions of seeded simulated rollouts. Unlike the
//! graph-blind polarization indices of Musco et al. / Yi–Patterson, the
//! objective sees the network: calming a hub counts for more than calming
//! a leaf because the transport geometry says so.
//!
//! Every rollout transition is priced through one
//! [`CandidateEvaluator`] carried along the trajectory by the
//! patch/price/unpatch protocol: price the flip-list to the next state,
//! [`patch`](CandidateEvaluator::patch) forward, and after the horizon
//! [`unpatch`](CandidateEvaluator::unpatch) back to the anchor for the
//! next rollout — the repair machinery end to end, no per-step geometry
//! rebuild.
//!
//! **Topology edits take the documented rebuild fallback.** Edge ids are
//! CSR positions, so an insertion or deletion renumbers the cost/row
//! indexing every geometry bundle is built on; scoring or committing an
//! edge action therefore reconstructs the graph
//! ([`CsrGraph::from_edges`]), a fresh engine, and fresh evaluators,
//! while stubborn placements (pure state changes) stay on the patched
//! path. The search is deterministic per [`InterventionConfig::seed`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_core::{CandidateEvaluator, SndConfig, SndEngine};
use snd_graph::{CsrGraph, NodeId};
use snd_models::process::{OpinionDynamics, StubbornVoter};
use snd_models::{flips_between, NetworkState, Opinion};

use crate::error::AnalysisError;

/// One network edit the planner may spend budget on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Intervention {
    /// Insert the directed edge `from → to`.
    AddEdge {
        /// Source endpoint.
        from: NodeId,
        /// Target endpoint.
        to: NodeId,
    },
    /// Delete the directed edge `from → to`.
    RemoveEdge {
        /// Source endpoint.
        from: NodeId,
        /// Target endpoint.
        to: NodeId,
    },
    /// Pin `node` to `opinion` for the rest of the run (curmudgeon
    /// placement: the node is set now and re-pinned after every dynamics
    /// step, exactly like a [`StubbornVoter`] mask member).
    Stubborn {
        /// The node made stubborn.
        node: NodeId,
        /// The opinion it is pinned to.
        opinion: Opinion,
    },
}

impl std::fmt::Display for Intervention {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Intervention::AddEdge { from, to } => write!(f, "add-edge {from}->{to}"),
            Intervention::RemoveEdge { from, to } => write!(f, "remove-edge {from}->{to}"),
            Intervention::Stubborn { node, opinion } => {
                write!(f, "stubborn {node}={opinion:?}")
            }
        }
    }
}

/// Search knobs. Defaults are sized for CI smoke runs; scale `rollouts`,
/// `horizon`, and the pools up for real planning.
#[derive(Clone, Debug)]
pub struct InterventionConfig {
    /// Number of actions to plan (greedy rounds).
    pub budget: usize,
    /// Beam width: partial plans kept per round (1 = pure greedy).
    pub beam: usize,
    /// Seeded rollouts averaged per candidate score.
    pub rollouts: usize,
    /// Dynamics steps per rollout.
    pub horizon: usize,
    /// Stubborn-placement candidates drawn from the curmudgeon mask.
    pub stubborn_pool: usize,
    /// Placements kept after the immediate-impact pre-screen.
    pub stubborn_keep: usize,
    /// Edge insertions *and* deletions sampled per round (each).
    pub edge_pool: usize,
    /// Master seed: mask draw, pool sampling, and rollout streams.
    pub seed: u64,
}

impl Default for InterventionConfig {
    fn default() -> Self {
        InterventionConfig {
            budget: 2,
            beam: 1,
            rollouts: 2,
            horizon: 3,
            stubborn_pool: 10,
            stubborn_keep: 3,
            edge_pool: 4,
            seed: 7,
        }
    }
}

/// One committed action with the expected drift after applying it.
#[derive(Clone, Debug)]
pub struct PlannedAction {
    /// The network edit.
    pub action: Intervention,
    /// Expected drift of the plan up to and including this action.
    pub drift: f64,
}

/// The planner's result: best-`k` actions in commit order.
#[derive(Clone, Debug)]
pub struct InterventionPlan {
    /// Expected drift of the untouched network (the yardstick).
    pub baseline_drift: f64,
    /// Committed actions, in order; `actions.len() <= budget` (the search
    /// stops early when no candidate improves the incumbent plan).
    pub actions: Vec<PlannedAction>,
    /// Expected drift after the full plan.
    pub final_drift: f64,
}

/// A partial plan carried across rounds. Owns plain data only (edge list,
/// pinned set, state) so the per-round engines/evaluators can be scoped
/// locals — the rebuild fallback in code shape.
#[derive(Clone)]
struct PlanEntry {
    edges: Vec<(NodeId, NodeId)>,
    pinned: Vec<(NodeId, Opinion)>,
    state: NetworkState,
    actions: Vec<PlannedAction>,
    drift: f64,
}

/// Expected drift of `(graph, state, pinned)` under `model`: mean over
/// seeded rollouts of the summed ordered SND along each trajectory, every
/// transition priced and advanced through one patch-carried evaluator.
fn expected_drift(
    g: &CsrGraph,
    engine: &SndEngine<'_>,
    model: &dyn OpinionDynamics,
    state: &NetworkState,
    pinned: &[(NodeId, Opinion)],
    cfg: &InterventionConfig,
) -> f64 {
    if cfg.rollouts == 0 || cfg.horizon == 0 {
        return 0.0;
    }
    let mut evaluator = CandidateEvaluator::new(engine, state.clone());
    let mut total = 0.0;
    for r in 0..cfg.rollouts {
        let mut rng =
            SmallRng::seed_from_u64(cfg.seed ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for _ in 0..cfg.horizon {
            let mut next = evaluator.anchor().clone();
            model.step(g, &mut next, &mut rng);
            for &(u, op) in pinned {
                next.set(u, op);
            }
            let flips = flips_between(evaluator.anchor(), &next);
            total += evaluator.price(&flips);
            evaluator.patch(&flips);
        }
        // Rewind to the anchor for the next rollout: O(1) per step.
        while evaluator.unpatch() {}
    }
    total / cfg.rollouts as f64
}

/// Stubborn-placement candidates: pool nodes from the curmudgeon mask, one
/// flip per active opinion, pre-screened by immediate ordered-SND impact
/// (the delta-priced batch) down to the `stubborn_keep` biggest movers.
fn stubborn_candidates(
    evaluator: &CandidateEvaluator<'_, '_>,
    pinned: &[(NodeId, Opinion)],
    n: usize,
    cfg: &InterventionConfig,
) -> Vec<(NodeId, Opinion)> {
    if cfg.stubborn_pool == 0 || cfg.stubborn_keep == 0 {
        return Vec::new();
    }
    // Expected mask hits ≈ 2 × pool so the take() below usually fills.
    let fraction = ((2 * cfg.stubborn_pool) as f64 / n as f64).min(1.0);
    let mask = StubbornVoter {
        copy_prob: 0.0,
        stubborn_fraction: fraction,
        mask_seed: cfg.seed,
    }
    .stubborn_mask(n);
    let pool: Vec<NodeId> = (0..n as NodeId)
        .filter(|&u| mask[u as usize] && pinned.iter().all(|&(p, _)| p != u))
        .take(cfg.stubborn_pool)
        .collect();
    let flips: Vec<Vec<(NodeId, Opinion)>> = pool
        .iter()
        .flat_map(|&u| {
            [Opinion::Positive, Opinion::Negative]
                .into_iter()
                .filter(move |&op| evaluator.anchor().opinion(u) != op)
                .map(move |op| vec![(u, op)])
        })
        .collect();
    let prices = evaluator.price_candidates(&flips);
    let mut ranked: Vec<usize> = (0..flips.len()).collect();
    // Stable sort: ties resolve to pool order, keeping the plan seeded.
    ranked.sort_by(|&a, &b| prices[b].total_cmp(&prices[a]));
    ranked
        .into_iter()
        .take(cfg.stubborn_keep)
        .map(|i| flips[i][0])
        .collect()
}

/// Edge-edit candidates: a seeded sample of existing edges (deletions) and
/// rejection-sampled absent pairs (insertions).
fn edge_candidates(
    g: &CsrGraph,
    edges: &[(NodeId, NodeId)],
    cfg: &InterventionConfig,
) -> Vec<Intervention> {
    if cfg.edge_pool == 0 {
        return Vec::new();
    }
    let n = g.node_count();
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(0xEDCE));
    let mut out = Vec::new();
    // Deletions: sample distinct positions.
    let mut idx: Vec<usize> = (0..edges.len()).collect();
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    for &i in idx.iter().take(cfg.edge_pool) {
        let (u, v) = edges[i];
        out.push(Intervention::RemoveEdge { from: u, to: v });
    }
    // Insertions: rejection-sample absent directed pairs.
    let mut found = 0;
    let mut attempts = 0;
    while found < cfg.edge_pool && attempts < 50 * cfg.edge_pool {
        attempts += 1;
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v || g.find_edge(u, v).is_some() {
            continue;
        }
        let action = Intervention::AddEdge { from: u, to: v };
        if out.contains(&action) {
            continue;
        }
        out.push(action);
        found += 1;
    }
    out
}

/// Plans up to `budget` interventions on `(graph, initial)` under `model`,
/// minimizing expected delta-SND drift. Greedy for `beam == 1`, beam
/// search otherwise; deterministic per seed. Errors with
/// [`AnalysisError::NoActions`] when the configured pools produce no
/// candidate action at all.
pub fn search_interventions(
    graph: &CsrGraph,
    model: &dyn OpinionDynamics,
    initial: &NetworkState,
    snd_config: &SndConfig,
    cfg: &InterventionConfig,
) -> Result<InterventionPlan, AnalysisError> {
    let n = graph.node_count();
    let base_edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    let baseline = {
        let engine = SndEngine::new(graph, snd_config.clone());
        expected_drift(graph, &engine, model, initial, &[], cfg)
    };
    let mut beam: Vec<PlanEntry> = vec![PlanEntry {
        edges: base_edges,
        pinned: Vec::new(),
        state: initial.clone(),
        actions: Vec::new(),
        drift: baseline,
    }];
    let beam_width = cfg.beam.max(1);

    for round in 0..cfg.budget {
        let mut expansions: Vec<PlanEntry> = Vec::new();
        for entry in &beam {
            let g = CsrGraph::from_edges(n, &entry.edges);
            let engine = SndEngine::new(&g, snd_config.clone());
            let evaluator = CandidateEvaluator::new(&engine, entry.state.clone());

            for (node, opinion) in stubborn_candidates(&evaluator, &entry.pinned, n, cfg) {
                let mut pinned = entry.pinned.clone();
                pinned.push((node, opinion));
                let mut state = entry.state.clone();
                state.set(node, opinion);
                let drift = expected_drift(&g, &engine, model, &state, &pinned, cfg);
                let mut actions = entry.actions.clone();
                actions.push(PlannedAction {
                    action: Intervention::Stubborn { node, opinion },
                    drift,
                });
                expansions.push(PlanEntry {
                    edges: entry.edges.clone(),
                    pinned,
                    state,
                    actions,
                    drift,
                });
            }

            for action in edge_candidates(&g, &entry.edges, cfg) {
                let mut edges = entry.edges.clone();
                match action {
                    Intervention::AddEdge { from, to } => edges.push((from, to)),
                    Intervention::RemoveEdge { from, to } => {
                        edges.retain(|&e| e != (from, to));
                    }
                    Intervention::Stubborn { .. } => {}
                }
                // Rebuild fallback: a topology edit invalidates the CSR
                // edge ids the delta geometry is indexed by, so this
                // candidate is scored on a fresh graph + engine.
                let g2 = CsrGraph::from_edges(n, &edges);
                let engine2 = SndEngine::new(&g2, snd_config.clone());
                let drift = expected_drift(&g2, &engine2, model, &entry.state, &entry.pinned, cfg);
                let mut actions = entry.actions.clone();
                actions.push(PlannedAction { action, drift });
                expansions.push(PlanEntry {
                    edges,
                    pinned: entry.pinned.clone(),
                    state: entry.state.clone(),
                    actions,
                    drift,
                });
            }
        }

        if expansions.is_empty() {
            if round == 0 {
                return Err(AnalysisError::NoActions);
            }
            break;
        }
        // Stable sort: equal drifts resolve to generation order.
        expansions.sort_by(|a, b| a.drift.total_cmp(&b.drift));
        expansions.truncate(beam_width);
        if expansions[0].drift >= beam[0].drift {
            break;
        }
        beam = expansions;
    }

    let best = beam.swap_remove(0);
    Ok(InterventionPlan {
        baseline_drift: baseline,
        final_drift: if best.actions.is_empty() {
            baseline
        } else {
            best.drift
        },
        actions: best.actions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snd_graph::generators::barabasi_albert;
    use snd_models::process::Voting;

    fn setup() -> (CsrGraph, Voting, NetworkState) {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = barabasi_albert(20, 2, &mut rng);
        let model = Voting::new(0.4, 0.05).expect("valid probabilities");
        let vals: Vec<i8> = (0..20).map(|i| [1, 0, -1, 0][i % 4]).collect();
        (g, model, NetworkState::from_values(&vals))
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let (g, model, s0) = setup();
        let cfg = InterventionConfig::default();
        let a = search_interventions(&g, &model, &s0, &SndConfig::default(), &cfg)
            .expect("non-empty pools");
        let b = search_interventions(&g, &model, &s0, &SndConfig::default(), &cfg)
            .expect("non-empty pools");
        let acts_a: Vec<Intervention> = a.actions.iter().map(|p| p.action).collect();
        let acts_b: Vec<Intervention> = b.actions.iter().map(|p| p.action).collect();
        assert_eq!(acts_a, acts_b);
        assert_eq!(a.final_drift.to_bits(), b.final_drift.to_bits());
        assert!(a.actions.len() <= cfg.budget);
        assert!(a.final_drift <= a.baseline_drift);
    }

    #[test]
    fn empty_pools_error_instead_of_planning_nothing() {
        let (g, model, s0) = setup();
        let cfg = InterventionConfig {
            stubborn_pool: 0,
            edge_pool: 0,
            ..Default::default()
        };
        let err = search_interventions(&g, &model, &s0, &SndConfig::default(), &cfg);
        assert!(matches!(err, Err(AnalysisError::NoActions)));
    }

    #[test]
    fn edge_only_search_takes_the_rebuild_fallback() {
        let (g, model, s0) = setup();
        let cfg = InterventionConfig {
            stubborn_pool: 0,
            stubborn_keep: 0,
            edge_pool: 3,
            budget: 1,
            ..Default::default()
        };
        let plan = search_interventions(&g, &model, &s0, &SndConfig::default(), &cfg)
            .expect("edge pool is non-empty");
        for p in &plan.actions {
            assert!(matches!(
                p.action,
                Intervention::AddEdge { .. } | Intervention::RemoveEdge { .. }
            ));
        }
    }

    #[test]
    fn beam_width_two_explores_at_least_as_well_as_greedy() {
        let (g, model, s0) = setup();
        let greedy = InterventionConfig {
            budget: 2,
            ..Default::default()
        };
        let beam = InterventionConfig {
            budget: 2,
            beam: 2,
            ..Default::default()
        };
        let a = search_interventions(&g, &model, &s0, &SndConfig::default(), &greedy)
            .expect("non-empty pools");
        let b = search_interventions(&g, &model, &s0, &SndConfig::default(), &beam)
            .expect("non-empty pools");
        // The beam keeps the greedy path as one of its entries, so it can
        // only match or improve the final drift.
        assert!(b.final_drift <= a.final_drift + 1e-12);
    }
}
