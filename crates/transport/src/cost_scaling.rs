//! Goldberg–Tarjan cost-scaling push–relabel min-cost flow.
//!
//! This is the algorithm family behind the CS2 solver that the paper's
//! implementation uses (§6.5), and the one Theorem 4's complexity analysis
//! cites. Costs are multiplied by `(V + 1)` so that a 1-optimal flow (no
//! residual arc with reduced cost below `−1` after the final phase) is
//! exactly optimal; `ε` shrinks geometrically by `ALPHA` between `refine`
//! phases. `refine` saturates all negative-reduced-cost arcs and then
//! discharges active nodes FIFO with current-arc scanning.
//!
//! The transportation instance is materialized as a bipartite network with
//! arc capacities `min(supply_i, demand_j)` (never binding at an extreme
//! point, so optimality is unaffected).
//!
//! # Overflow behavior
//!
//! Scaled costs and potentials are bounded by `O(V · ε₀) = O(V² · C)`,
//! which can exceed `i64` on huge-cost instances (the seed hard-panicked
//! there). [`solve`] now checks the headroom up front and *widens*: the
//! common case runs the network on `i64` arithmetic, and instances whose
//! potential bound does not fit run the identical algorithm on `i128`
//! ([`CostInt`] abstracts the scalar). Instances whose *total* mass does
//! not fit in the `i64` excess/residual counters (transient node excess is
//! bounded by total supply, not by any single mass) take a structured
//! fallback to the [`crate::ssp`] solver, whose arithmetic is unsigned
//! throughout — callers always get an exact optimum, never a panic.

use crate::dense::DenseCost;
use crate::plan::{FlowEntry, TransportPlan};
use crate::Mass;

const ALPHA: i64 = 8;

/// Signed scalar the scaled costs/potentials are computed in. Implemented
/// for `i64` (fast path) and `i128` (widened path for huge-cost instances).
trait CostInt:
    Copy
    + Ord
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Neg<Output = Self>
{
    const ZERO: Self;
    const ONE: Self;
    const MIN: Self;
    fn of(v: i64) -> Self;
    fn times(self, v: i64) -> Self;
    fn div_alpha(self) -> Self;
}

impl CostInt for i64 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MIN: Self = i64::MIN;
    fn of(v: i64) -> Self {
        v
    }
    fn times(self, v: i64) -> Self {
        self * v
    }
    fn div_alpha(self) -> Self {
        self / ALPHA
    }
}

impl CostInt for i128 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MIN: Self = i128::MIN;
    fn of(v: i64) -> Self {
        v as i128
    }
    fn times(self, v: i64) -> Self {
        self * v as i128
    }
    fn div_alpha(self) -> Self {
        self / ALPHA as i128
    }
}

#[derive(Clone, Copy, Debug)]
struct Arc<C> {
    to: u32,
    /// Index of the reverse arc in `graph[to]`.
    rev: u32,
    /// Residual capacity.
    residual: i64,
    /// Scaled cost (negated on reverse arcs).
    cost: C,
}

struct Network<C> {
    graph: Vec<Vec<Arc<C>>>,
    excess: Vec<i64>,
    potential: Vec<C>,
    current_arc: Vec<usize>,
}

impl<C: CostInt> Network<C> {
    fn new(nodes: usize) -> Self {
        Network {
            graph: vec![Vec::new(); nodes],
            excess: vec![0; nodes],
            potential: vec![C::ZERO; nodes],
            current_arc: vec![0; nodes],
        }
    }

    fn add_arc(&mut self, from: u32, to: u32, capacity: i64, cost: C) {
        let rev_from = self.graph[to as usize].len() as u32;
        let rev_to = self.graph[from as usize].len() as u32;
        self.graph[from as usize].push(Arc {
            to,
            rev: rev_from,
            residual: capacity,
            cost,
        });
        self.graph[to as usize].push(Arc {
            to: from,
            rev: rev_to,
            residual: 0,
            cost: -cost,
        });
    }

    #[inline]
    fn reduced_cost(&self, from: usize, arc: &Arc<C>) -> C {
        arc.cost + self.potential[from] - self.potential[arc.to as usize]
    }

    /// One scaling phase: make the current pseudo-flow ε-optimal.
    fn refine(&mut self, eps: C) {
        let nodes = self.graph.len();
        // Saturate arcs with negative reduced cost; this converts the
        // ε'-optimal flow of the previous phase into an ε-optimal
        // pseudo-flow with excesses.
        for v in 0..nodes {
            for a in 0..self.graph[v].len() {
                let arc = self.graph[v][a];
                if arc.residual > 0 && self.reduced_cost(v, &arc) < C::ZERO {
                    let delta = arc.residual;
                    self.apply_push(v, a, delta);
                }
            }
        }
        for p in self.current_arc.iter_mut() {
            *p = 0;
        }
        let mut queue: std::collections::VecDeque<u32> = (0..nodes as u32)
            .filter(|&v| self.excess[v as usize] > 0)
            .collect();
        let mut queued = vec![false; nodes];
        for &v in &queue {
            queued[v as usize] = true;
        }
        while let Some(v) = queue.pop_front() {
            queued[v as usize] = false;
            self.discharge(v as usize, eps, &mut queue, &mut queued);
        }
    }

    fn apply_push(&mut self, from: usize, arc_idx: usize, delta: i64) {
        debug_assert!(delta > 0);
        let (to, rev) = {
            let arc = &mut self.graph[from][arc_idx];
            arc.residual -= delta;
            (arc.to as usize, arc.rev as usize)
        };
        self.graph[to][rev].residual += delta;
        self.excess[from] -= delta;
        self.excess[to] += delta;
    }

    fn discharge(
        &mut self,
        v: usize,
        eps: C,
        queue: &mut std::collections::VecDeque<u32>,
        queued: &mut [bool],
    ) {
        while self.excess[v] > 0 {
            if self.current_arc[v] == self.graph[v].len() {
                self.relabel(v, eps);
                self.current_arc[v] = 0;
                continue;
            }
            let a = self.current_arc[v];
            let arc = self.graph[v][a];
            if arc.residual > 0 && self.reduced_cost(v, &arc) < C::ZERO {
                let delta = self.excess[v].min(arc.residual);
                let to = arc.to as usize;
                let was_active = self.excess[to] > 0;
                self.apply_push(v, a, delta);
                if !was_active && self.excess[to] > 0 && !queued[to] {
                    queued[to] = true;
                    queue.push_back(to as u32);
                }
            } else {
                self.current_arc[v] += 1;
            }
        }
    }

    /// Lower `v`'s potential just enough to create an admissible arc.
    fn relabel(&mut self, v: usize, eps: C) {
        let mut best = C::MIN;
        for arc in &self.graph[v] {
            if arc.residual > 0 {
                let candidate = self.potential[arc.to as usize] - arc.cost;
                if candidate > best {
                    best = candidate;
                }
            }
        }
        assert!(best != C::MIN, "relabel on a node with no residual arcs");
        self.potential[v] = best - eps;
    }
}

/// Runs the scaling loop on the chosen scalar width. `max_cost` is
/// `cost.max_entry()`, already computed by [`solve`] for the width check.
fn solve_typed<C: CostInt>(
    supplies: &[Mass],
    demands: &[Mass],
    cost: &DenseCost,
    max_cost: i64,
) -> TransportPlan {
    let m = supplies.len();
    let n = demands.len();
    let nodes = m + n;
    let scale = (nodes + 1) as i64;

    let mut net: Network<C> = Network::new(nodes);
    for (i, &supply) in supplies.iter().enumerate() {
        for (j, &demand) in demands.iter().enumerate() {
            // lint:allow(no-unwrap) masses are validated to fit i64 on entry to `solve`
            let capacity = i64::try_from(supply.min(demand)).expect("mass fits i64");
            net.add_arc(
                i as u32,
                (m + j) as u32,
                capacity,
                C::of(cost.at(i, j) as i64).times(scale),
            );
        }
    }
    for (i, &s) in supplies.iter().enumerate() {
        // lint:allow(no-unwrap) masses are validated to fit i64 on entry to `solve`
        net.excess[i] = i64::try_from(s).expect("mass fits i64");
    }
    for (j, &d) in demands.iter().enumerate() {
        // lint:allow(no-unwrap) masses are validated to fit i64 on entry to `solve`
        net.excess[m + j] = -i64::try_from(d).expect("mass fits i64");
    }

    let mut eps = C::of(max_cost).times(scale).max(C::ONE);
    loop {
        net.refine(eps);
        if eps == C::ONE {
            break;
        }
        eps = eps.div_alpha().max(C::ONE);
    }
    debug_assert!(net.excess.iter().all(|&e| e == 0), "flow must be balanced");

    let mut flows = Vec::new();
    let mut total_cost: i128 = 0;
    let mut total_flow: Mass = 0;
    for i in 0..m {
        for arc in &net.graph[i] {
            // Forward arcs leave suppliers; flow = capacity − residual,
            // read off the reverse arc's residual.
            // lint:allow(lossy-cast) u32 node id → usize index; not mass/cost arithmetic
            let j = arc.to as usize - m;
            let f = net.graph[arc.to as usize][arc.rev as usize].residual;
            if f > 0 {
                flows.push(FlowEntry {
                    row: i as u32,
                    col: j as u32,
                    flow: f as Mass,
                });
                total_cost += f as i128 * cost.at(i, j) as i128;
                total_flow += f as Mass;
            }
        }
    }
    flows.sort_by_key(|f| (f.row, f.col));
    TransportPlan {
        flows,
        total_cost,
        total_flow,
    }
}

/// True when the `i64` potential bound `max_cost · (V+1) · (3V+3)` has
/// comfortable headroom — the condition the seed `assert!`ed on.
fn fits_i64(max_cost: u32, nodes: usize) -> bool {
    (max_cost as i128) * (nodes as i128 + 1) * (3 * nodes as i128 + 3) < i64::MAX as i128 / 4
}

/// Solves a balanced transportation problem with all-positive supplies and
/// demands.
///
/// Never panics on instance magnitude: huge-cost instances widen the
/// scaled-cost arithmetic to `i128`, and masses above `i64::MAX` fall back
/// to the unsigned-arithmetic SSP solver (see the module docs).
pub fn solve(supplies: &[Mass], demands: &[Mass], cost: &DenseCost) -> TransportPlan {
    // A node's transient excess is bounded by the *total* supply (several
    // suppliers can push into one node before it discharges), so the whole
    // total — not just each mass — must fit the i64 excess counters.
    let total: u128 = supplies.iter().map(|&s| s as u128).sum();
    if i64::try_from(total).is_err() {
        return crate::ssp::solve(supplies, demands, cost);
    }
    let nodes = supplies.len() + demands.len();
    let max_cost = cost.max_entry();
    if fits_i64(max_cost, nodes) {
        solve_typed::<i64>(supplies, demands, cost, max_cost as i64)
    } else {
        solve_typed::<i128>(supplies, demands, cost, max_cost as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_optimum() {
        let cost = DenseCost::from_rows(&[&[0u32, 9][..], &[9, 0][..]]);
        let plan = solve(&[5, 7], &[5, 7], &cost);
        assert_eq!(plan.total_cost, 0);
        assert_eq!(plan.total_flow, 12);
    }

    #[test]
    fn asymmetric_instance() {
        let cost = DenseCost::from_rows(&[&[3u32, 1][..]]);
        let plan = solve(&[10], &[4, 6], &cost);
        assert_eq!(plan.total_cost, 4 * 3 + 6);
    }

    #[test]
    fn zero_cost_everywhere() {
        let cost = DenseCost::filled(3, 2, 0);
        let plan = solve(&[1, 2, 3], &[4, 2], &cost);
        assert_eq!(plan.total_cost, 0);
        assert_eq!(plan.total_flow, 6);
    }

    /// Regression for the seed's hard `assert!`: `u32::MAX` costs on an
    /// instance large enough that the `i64` potential bound fails. The seed
    /// panicked with "cost magnitude too large"; the widened `i128` path
    /// must solve it exactly.
    #[test]
    fn huge_costs_widen_instead_of_panicking() {
        let n = 14_000usize;
        assert!(
            !fits_i64(u32::MAX, n + 1),
            "instance must actually exceed the i64 headroom check"
        );
        let cost = DenseCost::filled(1, n, u32::MAX);
        let supplies = [n as u64];
        let demands = vec![1u64; n];
        let plan = solve(&supplies, &demands, &cost);
        assert_eq!(plan.total_cost, n as i128 * u32::MAX as i128);
        assert_eq!(plan.total_flow, n as u64);
        crate::plan::verify_feasible(&plan, &supplies, &demands, &cost).unwrap();
    }

    /// Masses above `i64::MAX` cannot be represented in the push–relabel
    /// excess counters; the structured SSP fallback must still return the
    /// exact optimum (the seed truncated them with `as i64`).
    #[test]
    fn masses_beyond_i64_fall_back_exactly() {
        let big = u64::MAX - 3;
        let cost = DenseCost::from_rows(&[&[3u32, 1][..]]);
        let plan = solve(&[big], &[big - 5, 5], &cost);
        assert_eq!(plan.total_cost, (big - 5) as i128 * 3 + 5);
        assert_eq!(plan.total_flow, big);
    }

    /// Regression (code review): masses that fit `i64` individually but
    /// whose *total* does not overflowed the excess counters when several
    /// suppliers pushed into one node. The total-mass guard must route
    /// these to the SSP fallback.
    #[test]
    fn total_mass_beyond_i64_falls_back_exactly() {
        let chunk = 6_000_000_000_000_000_000u64; // 3 · 6e18 > i64::MAX
        let cost = DenseCost::from_rows(&[&[0u32, 1, 1][..], &[0, 1, 1][..], &[0, 1, 1][..]]);
        let supplies = [chunk; 3];
        let demands = [chunk; 3];
        let plan = solve(&supplies, &demands, &cost);
        crate::plan::verify_feasible(&plan, &supplies, &demands, &cost).unwrap();
        // Optimum: one supplier uses the free column, two pay 1/unit.
        assert_eq!(plan.total_cost, 2 * chunk as i128);
    }

    /// The widened path agrees with the i64 path on instances both can
    /// solve (forced by calling the typed entry points directly).
    #[test]
    fn widened_path_matches_i64_path() {
        let cost = DenseCost::from_rows(&[&[4u32, 6, 8][..], &[5, 8, 7][..], &[6, 5, 7][..]]);
        let supplies = [200u64, 300, 400];
        let demands = [200u64, 300, 400];
        let max_cost = cost.max_entry() as i64;
        let narrow = solve_typed::<i64>(&supplies, &demands, &cost, max_cost);
        let wide = solve_typed::<i128>(&supplies, &demands, &cost, max_cost);
        assert_eq!(narrow, wide);
    }
}
