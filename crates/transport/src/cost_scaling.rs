//! Goldberg–Tarjan cost-scaling push–relabel min-cost flow.
//!
//! This is the algorithm family behind the CS2 solver that the paper's
//! implementation uses (§6.5), and the one Theorem 4's complexity analysis
//! cites. Costs are multiplied by `(V + 1)` so that a 1-optimal flow (no
//! residual arc with reduced cost below `−1` after the final phase) is
//! exactly optimal; `ε` shrinks geometrically by `ALPHA` between `refine`
//! phases. `refine` saturates all negative-reduced-cost arcs and then
//! discharges active nodes FIFO with current-arc scanning.
//!
//! The transportation instance is materialized as a bipartite network with
//! arc capacities `min(supply_i, demand_j)` (never binding at an extreme
//! point, so optimality is unaffected).

use crate::dense::DenseCost;
use crate::plan::{FlowEntry, TransportPlan};
use crate::Mass;

const ALPHA: i64 = 8;

#[derive(Clone, Copy, Debug)]
struct Arc {
    to: u32,
    /// Index of the reverse arc in `graph[to]`.
    rev: u32,
    /// Residual capacity.
    residual: i64,
    /// Scaled cost (negated on reverse arcs).
    cost: i64,
}

struct Network {
    graph: Vec<Vec<Arc>>,
    excess: Vec<i64>,
    potential: Vec<i64>,
    current_arc: Vec<usize>,
}

impl Network {
    fn new(nodes: usize) -> Self {
        Network {
            graph: vec![Vec::new(); nodes],
            excess: vec![0; nodes],
            potential: vec![0; nodes],
            current_arc: vec![0; nodes],
        }
    }

    fn add_arc(&mut self, from: u32, to: u32, capacity: i64, cost: i64) {
        let rev_from = self.graph[to as usize].len() as u32;
        let rev_to = self.graph[from as usize].len() as u32;
        self.graph[from as usize].push(Arc {
            to,
            rev: rev_from,
            residual: capacity,
            cost,
        });
        self.graph[to as usize].push(Arc {
            to: from,
            rev: rev_to,
            residual: 0,
            cost: -cost,
        });
    }

    #[inline]
    fn reduced_cost(&self, from: usize, arc: &Arc) -> i64 {
        arc.cost + self.potential[from] - self.potential[arc.to as usize]
    }

    /// One scaling phase: make the current pseudo-flow ε-optimal.
    fn refine(&mut self, eps: i64) {
        let nodes = self.graph.len();
        // Saturate arcs with negative reduced cost; this converts the
        // ε'-optimal flow of the previous phase into an ε-optimal
        // pseudo-flow with excesses.
        for v in 0..nodes {
            for a in 0..self.graph[v].len() {
                let arc = self.graph[v][a];
                if arc.residual > 0 && self.reduced_cost(v, &arc) < 0 {
                    let delta = arc.residual;
                    self.apply_push(v, a, delta);
                }
            }
        }
        for p in self.current_arc.iter_mut() {
            *p = 0;
        }
        let mut queue: std::collections::VecDeque<u32> = (0..nodes as u32)
            .filter(|&v| self.excess[v as usize] > 0)
            .collect();
        let mut queued = vec![false; nodes];
        for &v in &queue {
            queued[v as usize] = true;
        }
        while let Some(v) = queue.pop_front() {
            queued[v as usize] = false;
            self.discharge(v as usize, eps, &mut queue, &mut queued);
        }
    }

    fn apply_push(&mut self, from: usize, arc_idx: usize, delta: i64) {
        debug_assert!(delta > 0);
        let (to, rev) = {
            let arc = &mut self.graph[from][arc_idx];
            arc.residual -= delta;
            (arc.to as usize, arc.rev as usize)
        };
        self.graph[to][rev].residual += delta;
        self.excess[from] -= delta;
        self.excess[to] += delta;
    }

    fn discharge(
        &mut self,
        v: usize,
        eps: i64,
        queue: &mut std::collections::VecDeque<u32>,
        queued: &mut [bool],
    ) {
        while self.excess[v] > 0 {
            if self.current_arc[v] == self.graph[v].len() {
                self.relabel(v, eps);
                self.current_arc[v] = 0;
                continue;
            }
            let a = self.current_arc[v];
            let arc = self.graph[v][a];
            if arc.residual > 0 && self.reduced_cost(v, &arc) < 0 {
                let delta = self.excess[v].min(arc.residual);
                let to = arc.to as usize;
                let was_active = self.excess[to] > 0;
                self.apply_push(v, a, delta);
                if !was_active && self.excess[to] > 0 && !queued[to] {
                    queued[to] = true;
                    queue.push_back(to as u32);
                }
            } else {
                self.current_arc[v] += 1;
            }
        }
    }

    /// Lower `v`'s potential just enough to create an admissible arc.
    fn relabel(&mut self, v: usize, eps: i64) {
        let mut best = i64::MIN;
        for arc in &self.graph[v] {
            if arc.residual > 0 {
                let candidate = self.potential[arc.to as usize] - arc.cost;
                if candidate > best {
                    best = candidate;
                }
            }
        }
        assert!(best != i64::MIN, "relabel on a node with no residual arcs");
        self.potential[v] = best - eps;
    }
}

/// Solves a balanced transportation problem with all-positive supplies and
/// demands.
pub fn solve(supplies: &[Mass], demands: &[Mass], cost: &DenseCost) -> TransportPlan {
    let m = supplies.len();
    let n = demands.len();
    let nodes = m + n;
    let scale = (nodes + 1) as i64;
    let max_cost = cost.max_entry() as i64;
    // Potentials are bounded by O(V · ε₀); make sure i64 headroom exists.
    assert!(
        (max_cost as i128) * (scale as i128) * (3 * nodes as i128 + 3) < i64::MAX as i128 / 4,
        "cost magnitude too large for cost-scaling arithmetic"
    );

    let mut net = Network::new(nodes);
    for (i, &supply) in supplies.iter().enumerate() {
        for (j, &demand) in demands.iter().enumerate() {
            let capacity = supply.min(demand) as i64;
            net.add_arc(
                i as u32,
                (m + j) as u32,
                capacity,
                cost.at(i, j) as i64 * scale,
            );
        }
    }
    for (i, &s) in supplies.iter().enumerate() {
        net.excess[i] = s as i64;
    }
    for (j, &d) in demands.iter().enumerate() {
        net.excess[m + j] = -(d as i64);
    }

    let mut eps = (max_cost * scale).max(1);
    loop {
        net.refine(eps);
        if eps == 1 {
            break;
        }
        eps = (eps / ALPHA).max(1);
    }
    debug_assert!(net.excess.iter().all(|&e| e == 0), "flow must be balanced");

    let mut flows = Vec::new();
    let mut total_cost: i128 = 0;
    let mut total_flow: Mass = 0;
    for i in 0..m {
        for arc in &net.graph[i] {
            // Forward arcs leave suppliers; flow = capacity − residual,
            // read off the reverse arc's residual.
            let j = arc.to as usize - m;
            let f = net.graph[arc.to as usize][arc.rev as usize].residual;
            if f > 0 {
                flows.push(FlowEntry {
                    row: i as u32,
                    col: j as u32,
                    flow: f as Mass,
                });
                total_cost += f as i128 * cost.at(i, j) as i128;
                total_flow += f as Mass;
            }
        }
    }
    flows.sort_by_key(|f| (f.row, f.col));
    TransportPlan {
        flows,
        total_cost,
        total_flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_optimum() {
        let cost = DenseCost::from_rows(&[&[0u32, 9][..], &[9, 0][..]]);
        let plan = solve(&[5, 7], &[5, 7], &cost);
        assert_eq!(plan.total_cost, 0);
        assert_eq!(plan.total_flow, 12);
    }

    #[test]
    fn asymmetric_instance() {
        let cost = DenseCost::from_rows(&[&[3u32, 1][..]]);
        let plan = solve(&[10], &[4, 6], &cost);
        assert_eq!(plan.total_cost, 4 * 3 + 6);
    }

    #[test]
    fn zero_cost_everywhere() {
        let cost = DenseCost::filled(3, 2, 0);
        let plan = solve(&[1, 2, 3], &[4, 2], &cost);
        assert_eq!(plan.total_cost, 0);
        assert_eq!(plan.total_flow, 6);
    }
}
