//! Dense row-major cost matrix with `u32` entries.
//!
//! Shortest-path costs in SND fit comfortably in `u32`: with the paper's
//! Assumption 2 (edge costs `<= U`), a path of at most `n − 1` hops costs at
//! most `(n − 1)·U`, which is below `2^32` even for `n = 200k`, `U = 60`.

use std::ops::Range;

use rand::Rng;

/// Dense row-major cost matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseCost {
    rows: usize,
    cols: usize,
    data: Vec<u32>,
}

impl DenseCost {
    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: u32) -> Self {
        DenseCost {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<u32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        DenseCost { rows, cols, data }
    }

    /// Creates a matrix from row slices (test convenience).
    pub fn from_rows(rows: &[&[u32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        DenseCost {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Random matrix with entries in `range` (test convenience).
    pub fn random<R: Rng>(rows: usize, cols: usize, range: Range<u32>, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(range.clone()))
            .collect();
        DenseCost { rows, cols, data }
    }

    /// Number of rows (suppliers).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (consumers).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cost of cell `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> u32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable access to cell `(i, j)`.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut u32 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Maximum entry (0 for an empty matrix).
    pub fn max_entry(&self) -> u32 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Extracts the submatrix given row and column index lists.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> DenseCost {
        let mut data = Vec::with_capacity(rows.len() * cols.len());
        for &i in rows {
            let row = self.row(i);
            data.extend(cols.iter().map(|&j| row[j]));
        }
        DenseCost {
            rows: rows.len(),
            cols: cols.len(),
            data,
        }
    }

    /// Returns a copy with one extra column of constant cost appended.
    pub fn with_extra_col(&self, value: u32) -> DenseCost {
        let mut data = Vec::with_capacity(self.rows * (self.cols + 1));
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.push(value);
        }
        DenseCost {
            rows: self.rows,
            cols: self.cols + 1,
            data,
        }
    }

    /// Returns a copy with one extra row of constant cost appended.
    pub fn with_extra_row(&self, value: u32) -> DenseCost {
        let mut data = self.data.clone();
        data.extend(std::iter::repeat_n(value, self.cols));
        DenseCost {
            rows: self.rows + 1,
            cols: self.cols,
            data,
        }
    }

    /// True if the matrix is a semimetric restricted to a square shape:
    /// zero diagonal and triangle inequality (symmetry not required).
    pub fn is_semimetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let n = self.rows;
        for i in 0..n {
            if self.at(i, i) != 0 {
                return false;
            }
        }
        for i in 0..n {
            for k in 0..n {
                let dik = self.at(i, k) as u64;
                for j in 0..n {
                    // lint:allow(lossy-cast) distance entries are u32; u32 → u64 is exact
                    if dik + (self.at(k, j) as u64) < self.at(i, j) as u64 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// True if the matrix is a full metric: semimetric plus symmetry.
    pub fn is_metric(&self) -> bool {
        if !self.is_semimetric() {
            return false;
        }
        let n = self.rows;
        for i in 0..n {
            for j in 0..n {
                if self.at(i, j) != self.at(j, i) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_rows() {
        let m = DenseCost::from_rows(&[&[1u32, 2, 3][..], &[4, 5, 6][..]]);
        assert_eq!(m.at(0, 2), 3);
        assert_eq!(m.at(1, 0), 4);
        assert_eq!(m.row(1), &[4, 5, 6]);
        assert_eq!(m.max_entry(), 6);
    }

    #[test]
    fn submatrix_extraction() {
        let m = DenseCost::from_rows(&[&[1u32, 2, 3][..], &[4, 5, 6][..], &[7, 8, 9][..]]);
        let s = m.submatrix(&[0, 2], &[1]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 1);
        assert_eq!(s.at(0, 0), 2);
        assert_eq!(s.at(1, 0), 8);
    }

    #[test]
    fn extra_row_col() {
        let m = DenseCost::from_rows(&[&[1u32, 2][..]]);
        let c = m.with_extra_col(0);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.at(0, 2), 0);
        let r = m.with_extra_row(9);
        assert_eq!(r.rows(), 2);
        assert_eq!(r.at(1, 1), 9);
    }

    #[test]
    fn metric_checks() {
        let metric = DenseCost::from_rows(&[&[0u32, 1, 2][..], &[1, 0, 1][..], &[2, 1, 0][..]]);
        assert!(metric.is_metric());
        let asym = DenseCost::from_rows(&[&[0u32, 1][..], &[2, 0][..]]);
        assert!(asym.is_semimetric());
        assert!(!asym.is_metric());
        let broken = DenseCost::from_rows(&[&[0u32, 10][..], &[10, 1][..]]);
        assert!(!broken.is_semimetric()); // nonzero diagonal
        let no_triangle =
            DenseCost::from_rows(&[&[0u32, 1, 9][..], &[1, 0, 1][..], &[9, 1, 0][..]]);
        assert!(!no_triangle.is_semimetric());
    }
}
