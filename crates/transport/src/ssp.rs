//! Successive shortest paths with Johnson potentials.
//!
//! A compact, obviously-correct min-cost-flow solver for the balanced
//! transportation problem, used as the reference oracle for the simplex and
//! cost-scaling implementations. Dijkstra runs over reduced costs (kept
//! non-negative by the potential update `π ← π + d`), augmenting along a
//! shortest source→consumer path each round. Dense `O(m·n)` per Dijkstra;
//! intended for small/medium instances.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dense::DenseCost;
use crate::plan::{FlowEntry, TransportPlan};
use crate::Mass;

/// Solves a balanced transportation problem with all-positive supplies and
/// demands.
pub fn solve(supplies: &[Mass], demands: &[Mass], cost: &DenseCost) -> TransportPlan {
    let m = supplies.len();
    let n = demands.len();
    let mut rs = supplies.to_vec();
    let mut rd = demands.to_vec();
    // Dense flow matrix: this solver is an oracle for small instances.
    let mut flow = vec![0 as Mass; m * n];
    // Potentials per node; suppliers then consumers.
    let mut pi_s = vec![0i64; m];
    let mut pi_c = vec![0i64; n];

    let mut remaining: u128 = rs.iter().map(|&s| s as u128).sum();
    while remaining > 0 {
        // Dijkstra over reduced costs from every supplier with residual
        // supply. Node ids: suppliers 0..m, consumers m..m+n.
        let total = m + n;
        let mut dist = vec![u64::MAX; total];
        let mut parent = vec![usize::MAX; total];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (i, &s) in rs.iter().enumerate() {
            if s > 0 {
                dist[i] = 0;
                heap.push(Reverse((0, i)));
            }
        }
        while let Some(Reverse((d, node))) = heap.pop() {
            if d > dist[node] {
                continue;
            }
            if node < m {
                let i = node;
                // Forward arcs i -> every consumer, infinite capacity.
                for j in 0..n {
                    // lint:allow(lossy-cast) cost entries are u32; u32 → i64 is exact
                    let rc = cost.at(i, j) as i64 + pi_s[i] - pi_c[j];
                    debug_assert!(rc >= 0, "reduced cost must stay non-negative");
                    // lint:allow(lossy-cast) rc asserted non-negative above; i64 → u64 is exact for rc >= 0
                    let nd = d + rc as u64;
                    if nd < dist[m + j] {
                        dist[m + j] = nd;
                        parent[m + j] = i;
                        heap.push(Reverse((nd, m + j)));
                    }
                }
            } else {
                let j = node - m;
                // Backward arcs j -> supplier i for positive flow cells.
                for i in 0..m {
                    if flow[i * n + j] > 0 {
                        let rc = -(cost.at(i, j) as i64) + pi_c[j] - pi_s[i];
                        debug_assert!(rc >= 0, "reduced cost must stay non-negative");
                        // lint:allow(lossy-cast) rc asserted non-negative above; i64 → u64 is exact for rc >= 0
                        let nd = d + rc as u64;
                        if nd < dist[i] {
                            dist[i] = nd;
                            parent[i] = m + j;
                            heap.push(Reverse((nd, i)));
                        }
                    }
                }
            }
        }

        // Closest consumer with unmet demand.
        let (target, d_target) = (0..n)
            .filter(|&j| rd[j] > 0)
            .map(|j| (j, dist[m + j]))
            .min_by_key(|&(_, d)| d)
            // lint:allow(no-unwrap) supplies and demands sum equal, so unmet demand exists whenever supply remains
            .expect("balanced problem: demand remains while supply remains");
        assert!(
            d_target != u64::MAX,
            "dense bipartite graph must reach demand"
        );

        // Potential update capped at the target's distance keeps all
        // residual reduced costs non-negative.
        for i in 0..m {
            // lint:allow(lossy-cast) capped at d_target, a sum of < n reduced costs, each <= max u32 cost
            pi_s[i] += dist[i].min(d_target) as i64;
        }
        for j in 0..n {
            // lint:allow(lossy-cast) capped at d_target, a sum of < n reduced costs, each <= max u32 cost
            pi_c[j] += dist[m + j].min(d_target) as i64;
        }

        // Trace the augmenting path back to its source supplier.
        let mut path = Vec::new(); // (i, j, forward?)
        let mut node = m + target;
        while parent[node] != usize::MAX {
            let prev = parent[node];
            if node >= m {
                path.push((prev, node - m, true));
            } else {
                path.push((node, prev - m, false));
            }
            node = prev;
        }
        debug_assert!(node < m, "path must start at a supplier");
        let source = node;

        // Bottleneck: source supply, target demand, backward-arc flows.
        let mut delta = rs[source].min(rd[target]);
        for &(i, j, forward) in &path {
            if !forward {
                delta = delta.min(flow[i * n + j]);
            }
        }
        debug_assert!(delta > 0);
        for &(i, j, forward) in &path {
            if forward {
                flow[i * n + j] += delta;
            } else {
                flow[i * n + j] -= delta;
            }
        }
        rs[source] -= delta;
        rd[target] -= delta;
        remaining -= delta as u128;
    }

    let mut flows = Vec::new();
    let mut total_cost: i128 = 0;
    let mut total_flow: Mass = 0;
    for i in 0..m {
        for j in 0..n {
            let f = flow[i * n + j];
            if f > 0 {
                flows.push(FlowEntry {
                    row: i as u32,
                    col: j as u32,
                    flow: f,
                });
                total_cost += f as i128 * cost.at(i, j) as i128;
                total_flow += f;
            }
        }
    }
    TransportPlan {
        flows,
        total_cost,
        total_flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_cheap_cells() {
        let cost = DenseCost::from_rows(&[&[1u32, 100][..], &[100, 1][..]]);
        let plan = solve(&[10, 10], &[10, 10], &cost);
        assert_eq!(plan.total_cost, 20);
    }

    #[test]
    fn forced_expensive_assignment() {
        // Only one consumer: both suppliers must ship there.
        let cost = DenseCost::from_rows(&[&[2u32][..], &[3][..]]);
        let plan = solve(&[4, 6], &[10], &cost);
        assert_eq!(plan.total_cost, 4 * 2 + 6 * 3);
    }

    #[test]
    fn rerouting_through_backward_arcs() {
        // Greedy first augmentation must later be partially undone:
        // classic instance where SSP needs residual arcs.
        let cost = DenseCost::from_rows(&[&[1u32, 2][..], &[1, 4][..]]);
        let plan = solve(&[1, 1], &[1, 1], &cost);
        // Optimum: supplier 0 -> consumer 1 (2), supplier 1 -> consumer 0 (1).
        assert_eq!(plan.total_cost, 3);
    }
}
