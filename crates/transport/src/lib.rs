//! Exact solvers for the transportation problem underlying EMD and SND.
//!
//! All arithmetic is integral: masses are fixed-point integers (`u64`) and
//! per-unit costs are `u32`, with cost accumulation in `i128`, so solver
//! results are exact and platform-independent. Three independent solvers are
//! provided and cross-validated against each other:
//!
//! * [`simplex`] — the transportation simplex (least-cost start, MODI
//!   pivoting with block pricing). Default: fastest in practice on the dense
//!   bipartite problems SND produces.
//! * [`ssp`] — successive shortest paths with Johnson potentials; compact
//!   and obviously-correct, used as an oracle.
//! * [`cost_scaling`] — Goldberg–Tarjan cost-scaling push–relabel, the
//!   algorithm family behind the CS2 solver used by the paper (§6.5) and by
//!   Theorem 4's complexity bound.
//!
//! [`Solver::Auto`] picks among them per instance (see [`select_solver`]),
//! and single-row/column instances short-circuit to their forced plan
//! without running any solver.
//!
//! The entry points are [`solve_balanced`] (total supply must equal total
//! demand — the case produced by EMD\*'s bank-bin extension) and
//! [`solve_unbalanced`] (classic-EMD semantics: only `min(ΣP, ΣQ)` mass
//! moves; the surplus is absorbed by a zero-cost dummy node).
//!
//! # Overflow semantics
//!
//! No solver panics on instance magnitude. The simplex prices on the rayon
//! pool for large instances ([`simplex::solve_par`] is property-tested
//! bit-identical to [`simplex::solve_seq`]); cost-scaling widens its scaled
//! potentials to `i128` when `u32`-sized costs on large node counts exceed
//! the `i64` headroom, and falls back to SSP for masses beyond `i64::MAX`
//! (see [`cost_scaling`]'s module docs).

pub mod cost_scaling;
pub mod dense;
pub mod plan;
pub mod simplex;
pub mod ssp;

pub use dense::DenseCost;
pub use plan::{verify_feasible, FlowEntry, TransportPlan};

/// Fixed-point mass unit.
pub type Mass = u64;

/// Solver selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Solver {
    /// Transportation simplex (default).
    #[default]
    Simplex,
    /// Successive shortest paths.
    Ssp,
    /// Cost-scaling push–relabel.
    CostScaling,
    /// Pick per instance from its shape ([`select_solver`]); single-line
    /// instances bypass the solvers entirely.
    Auto,
}

/// Aspect ratio (`cols / rows`) from which [`select_solver`] prefers
/// cost-scaling over the simplex.
pub const WIDE_ASPECT: usize = 128;

/// Picks the solver for a (zero-stripped) balanced instance.
///
/// Takes the instance itself rather than pre-extracted statistics so that
/// magnitude scans (max cost is an `O(m·n)` pass) happen only if a
/// threshold actually consults them — the current thresholds are purely
/// shape-based, so selection is `O(1)`.
///
/// Calibrated against the `solver_scaling` bench (`BENCH_solver.json`) on
/// the dense bipartite shapes SND produces:
///
/// * The transportation simplex wins every near-square shape at every
///   measured size and cost magnitude — ~2× over SSP at 4×4 growing to
///   ~5–6× at 128×128, and 1.2–2× over cost-scaling there — so it is the
///   default.
/// * Cost-scaling wins *column-heavy* shapes, `cols ≳ 128·rows` (2.6× at
///   4×1024 with a margin that grows with the aspect ratio; ~40× at
///   1×4096): the simplex's row-minimum start scans every open column per
///   allocation, degrading toward `O(cols²)` when rows are few. These
///   shapes are real in the warm path — a nearly-identical snapshot pair
///   has few residual rows but bank columns on every active bin. The
///   transposed case (`rows ≫ cols`) stays with the simplex, whose start
///   is cheap there (measured 5× faster than cost-scaling at 256×4).
/// * SSP never wins a measured shape; it remains the cross-validation
///   oracle and the structured fallback for beyond-`i64` masses.
///
/// Cost and mass magnitudes stay available through `cost`/`supplies` for
/// future recalibration: cost magnitude moves cost-scaling's phase count
/// (`∝ log(max_cost)`, which halves its wide-shape margin at `u32::MAX`
/// costs) and total mass decides the fallback inside cost-scaling.
pub fn select_solver(supplies: &[Mass], demands: &[Mass], cost: &DenseCost) -> Solver {
    debug_assert_eq!(supplies.len(), cost.rows());
    debug_assert_eq!(demands.len(), cost.cols());
    if demands.len() >= WIDE_ASPECT * supplies.len().max(1) {
        Solver::CostScaling
    } else {
        Solver::Simplex
    }
}

/// The forced plan of a single-row or single-column balanced instance:
/// every cell must carry exactly the opposite side's mass, so no pivoting
/// or path search is needed. `None` for general shapes.
fn solve_line(supplies: &[Mass], demands: &[Mass], cost: &DenseCost) -> Option<TransportPlan> {
    let flows: Vec<FlowEntry> = if supplies.len() == 1 {
        demands
            .iter()
            .enumerate()
            .map(|(j, &d)| FlowEntry {
                row: 0,
                col: j as u32,
                flow: d,
            })
            .collect()
    } else if demands.len() == 1 {
        supplies
            .iter()
            .enumerate()
            .map(|(i, &s)| FlowEntry {
                row: i as u32,
                col: 0,
                flow: s,
            })
            .collect()
    } else {
        return None;
    };
    let mut plan = TransportPlan {
        flows,
        total_cost: 0,
        total_flow: 0,
    };
    plan.recompute_totals(cost);
    Some(plan)
}

/// Solves a balanced transportation problem (`Σ supplies == Σ demands`).
///
/// Zero-supply rows and zero-demand columns are permitted and are stripped
/// before solving (Lemma 1 of the paper: empty bins never affect the
/// optimum).
///
/// # Panics
/// Panics if the problem is unbalanced or the matrix shape mismatches.
pub fn solve_balanced(
    supplies: &[Mass],
    demands: &[Mass],
    cost: &DenseCost,
    solver: Solver,
) -> TransportPlan {
    assert_eq!(supplies.len(), cost.rows(), "supply/cost shape mismatch");
    assert_eq!(demands.len(), cost.cols(), "demand/cost shape mismatch");
    let total_s: u128 = supplies.iter().map(|&s| s as u128).sum();
    let total_d: u128 = demands.iter().map(|&d| d as u128).sum();
    assert_eq!(total_s, total_d, "unbalanced transportation problem");
    if total_s == 0 {
        return TransportPlan::empty();
    }

    // Strip empty rows/columns (Lemma 1) and remember original indices.
    let rows: Vec<usize> = (0..supplies.len()).filter(|&i| supplies[i] > 0).collect();
    let cols: Vec<usize> = (0..demands.len()).filter(|&j| demands[j] > 0).collect();
    let sub_supplies: Vec<Mass> = rows.iter().map(|&i| supplies[i]).collect();
    let sub_demands: Vec<Mass> = cols.iter().map(|&j| demands[j]).collect();
    let sub_cost = cost.submatrix(&rows, &cols);

    let solver = match solver {
        Solver::Auto => {
            // Single-line instances have a forced plan — skip solving.
            if let Some(mut plan) = solve_line(&sub_supplies, &sub_demands, &sub_cost) {
                for entry in &mut plan.flows {
                    entry.row = rows[entry.row as usize] as u32;
                    entry.col = cols[entry.col as usize] as u32;
                }
                return plan;
            }
            select_solver(&sub_supplies, &sub_demands, &sub_cost)
        }
        s => s,
    };
    let mut plan = match solver {
        Solver::Simplex => simplex::solve(&sub_supplies, &sub_demands, &sub_cost),
        Solver::Ssp => ssp::solve(&sub_supplies, &sub_demands, &sub_cost),
        Solver::CostScaling => cost_scaling::solve(&sub_supplies, &sub_demands, &sub_cost),
        Solver::Auto => unreachable!("Auto resolved above"),
    };
    // Map flows back to original indices.
    for entry in &mut plan.flows {
        entry.row = rows[entry.row as usize] as u32;
        entry.col = cols[entry.col as usize] as u32;
    }
    plan
}

/// Solves an unbalanced problem with classic-EMD semantics: exactly
/// `min(Σ supplies, Σ demands)` units move; surplus supply (or unmet demand)
/// is routed to a zero-cost dummy column (or row) that does not appear in
/// the returned flows.
pub fn solve_unbalanced(
    supplies: &[Mass],
    demands: &[Mass],
    cost: &DenseCost,
    solver: Solver,
) -> TransportPlan {
    let total_s: u128 = supplies.iter().map(|&s| s as u128).sum();
    let total_d: u128 = demands.iter().map(|&d| d as u128).sum();
    if total_s == total_d {
        return solve_balanced(supplies, demands, cost, solver);
    }
    let (m, n) = (supplies.len(), demands.len());
    if total_s > total_d {
        // Dummy consumer absorbs the surplus at zero cost.
        let surplus = (total_s - total_d) as Mass;
        let mut demands2 = demands.to_vec();
        demands2.push(surplus);
        let cost2 = cost.with_extra_col(0);
        let mut plan = solve_balanced(supplies, &demands2, &cost2, solver);
        plan.flows.retain(|f| (f.col as usize) < n);
        plan.recompute_totals(cost);
        plan
    } else {
        let deficit = (total_d - total_s) as Mass;
        let mut supplies2 = supplies.to_vec();
        supplies2.push(deficit);
        let cost2 = cost.with_extra_row(0);
        let mut plan = solve_balanced(&supplies2, demands, &cost2, solver);
        plan.flows.retain(|f| (f.row as usize) < m);
        plan.recompute_totals(cost);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn all_solvers() -> [Solver; 4] {
        [
            Solver::Simplex,
            Solver::Ssp,
            Solver::CostScaling,
            Solver::Auto,
        ]
    }

    #[test]
    fn trivial_one_cell() {
        let cost = DenseCost::from_rows(&[&[7u32][..]]);
        for s in all_solvers() {
            let plan = solve_balanced(&[5], &[5], &cost, s);
            assert_eq!(plan.total_cost, 35);
            assert_eq!(plan.total_flow, 5);
        }
    }

    #[test]
    fn textbook_3x3() {
        let cost = DenseCost::from_rows(&[&[4u32, 6, 8][..], &[5, 8, 7][..], &[6, 5, 7][..]]);
        let supplies = [200u64, 300, 400];
        let demands = [200u64, 300, 400];
        // All three independent solvers must agree; SSP is the reference.
        let reference = solve_balanced(&supplies, &demands, &cost, Solver::Ssp);
        for s in all_solvers() {
            let plan = solve_balanced(&supplies, &demands, &cost, s);
            verify_feasible(&plan, &supplies, &demands, &cost).unwrap();
            assert_eq!(plan.total_cost, reference.total_cost, "solver {s:?}");
        }
    }

    #[test]
    fn solvers_agree_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(99);
        for trial in 0..60 {
            let m = rng.gen_range(1..8);
            let n = rng.gen_range(1..8);
            let cost = DenseCost::random(m, n, 0..50, &mut rng);
            let mut supplies: Vec<u64> = (0..m).map(|_| rng.gen_range(0..30)).collect();
            let mut demands: Vec<u64> = (0..n).map(|_| rng.gen_range(0..30)).collect();
            // Balance by topping up the last element.
            let (ts, td): (u64, u64) = (supplies.iter().sum(), demands.iter().sum());
            if ts > td {
                demands[n - 1] += ts - td;
            } else {
                supplies[m - 1] += td - ts;
            }
            let reference = solve_balanced(&supplies, &demands, &cost, Solver::Ssp);
            for s in all_solvers() {
                let plan = solve_balanced(&supplies, &demands, &cost, s);
                verify_feasible(&plan, &supplies, &demands, &cost).unwrap();
                assert_eq!(
                    plan.total_cost, reference.total_cost,
                    "trial {trial} solver {s:?}"
                );
            }
        }
    }

    #[test]
    fn unbalanced_moves_min_mass() {
        let cost = DenseCost::from_rows(&[&[1u32, 10][..], &[10, 1][..]]);
        for s in all_solvers() {
            // Supply 30, demand 12 => only 12 units move, matched diagonally.
            let plan = solve_unbalanced(&[20, 10], &[6, 6], &cost, s);
            assert_eq!(plan.total_flow, 12);
            assert_eq!(plan.total_cost, 12);
            // Demand-heavy mirror.
            let plan = solve_unbalanced(&[6, 6], &[20, 10], &cost, s);
            assert_eq!(plan.total_flow, 12);
            assert_eq!(plan.total_cost, 12);
        }
    }

    #[test]
    fn zero_rows_and_cols_are_ignored() {
        let cost = DenseCost::from_rows(&[&[9u32, 2][..], &[3, 9][..]]);
        for s in all_solvers() {
            let plan = solve_balanced(&[0, 4], &[4, 0], &cost, s);
            assert_eq!(plan.total_cost, 12);
            assert_eq!(plan.flows.len(), 1);
            assert_eq!((plan.flows[0].row, plan.flows[0].col), (1, 0));
        }
    }

    #[test]
    fn all_zero_problem() {
        let cost = DenseCost::from_rows(&[&[1u32][..]]);
        for s in all_solvers() {
            let plan = solve_balanced(&[0], &[0], &cost, s);
            assert_eq!(plan.total_cost, 0);
            assert_eq!(plan.total_flow, 0);
        }
    }

    #[test]
    fn large_masses_no_overflow() {
        let big = 1u64 << 40;
        let cost = DenseCost::from_rows(&[&[u32::MAX / 4][..]]);
        let plan = solve_balanced(&[big], &[big], &cost, Solver::Simplex);
        assert_eq!(plan.total_cost, (big as i128) * ((u32::MAX / 4) as i128));
    }

    #[test]
    fn auto_line_shortcut_matches_solvers() {
        // 1×n and m×1 shapes: Auto's forced plan equals a real solve.
        let cost = DenseCost::from_rows(&[&[3u32, 1, 4][..]]);
        let auto = solve_balanced(&[9], &[2, 3, 4], &cost, Solver::Auto);
        let simplex = solve_balanced(&[9], &[2, 3, 4], &cost, Solver::Simplex);
        assert_eq!(auto, simplex);
        let cost_t = DenseCost::from_rows(&[&[3u32][..], &[1][..], &[4][..]]);
        let auto = solve_balanced(&[2, 3, 4], &[9], &cost_t, Solver::Auto);
        let ssp = solve_balanced(&[2, 3, 4], &[9], &cost_t, Solver::Ssp);
        assert_eq!(auto.total_cost, ssp.total_cost);
        verify_feasible(&auto, &[2, 3, 4], &[9], &cost_t).unwrap();
    }

    #[test]
    fn auto_strips_zeros_before_classifying_shape() {
        // Two rows, but one is empty: after Lemma-1 stripping this is a
        // 1×2 line instance; the flows must map back to original indices.
        let cost = DenseCost::from_rows(&[&[9u32, 9][..], &[2, 5][..]]);
        let plan = solve_balanced(&[0, 7], &[4, 3], &cost, Solver::Auto);
        assert_eq!(plan.total_cost, 4 * 2 + 3 * 5);
        verify_feasible(&plan, &[0, 7], &[4, 3], &cost).unwrap();
        assert!(plan.flows.iter().all(|f| f.row == 1));
    }
}
