//! Transportation plans and feasibility verification.

use crate::dense::DenseCost;
use crate::Mass;

/// One cell of a transportation plan: `flow` units move from supplier `row`
/// to consumer `col`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowEntry {
    /// Supplier index.
    pub row: u32,
    /// Consumer index.
    pub col: u32,
    /// Units moved.
    pub flow: Mass,
}

/// An optimal transportation plan.
///
/// Equality is exact (flow list, cost, and mass) — the relation the
/// parallel-vs-sequential bit-identical property tests assert on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransportPlan {
    /// Non-zero flow cells.
    pub flows: Vec<FlowEntry>,
    /// Total cost `Σ flow·cost` in exact integer arithmetic.
    pub total_cost: i128,
    /// Total mass moved.
    pub total_flow: Mass,
}

impl TransportPlan {
    /// A plan with no flow.
    pub fn empty() -> Self {
        TransportPlan::default()
    }

    /// Recomputes `total_cost` / `total_flow` from the flow list against a
    /// cost matrix (used after filtering out dummy rows/columns).
    pub fn recompute_totals(&mut self, cost: &DenseCost) {
        self.total_cost = self
            .flows
            .iter()
            .map(|f| f.flow as i128 * cost.at(f.row as usize, f.col as usize) as i128)
            .sum();
        self.total_flow = self.flows.iter().map(|f| f.flow).sum();
    }

    /// Average per-unit cost (`total_cost / total_flow`), the normalization
    /// used by classic EMD. Zero when nothing moves.
    pub fn mean_cost(&self) -> f64 {
        if self.total_flow == 0 {
            0.0
        } else {
            self.total_cost as f64 / self.total_flow as f64
        }
    }
}

/// Verifies that a plan is feasible for a *balanced* problem: every supply
/// fully shipped, every demand fully met, no negative or duplicate cells,
/// and the recorded totals consistent.
pub fn verify_feasible(
    plan: &TransportPlan,
    supplies: &[Mass],
    demands: &[Mass],
    cost: &DenseCost,
) -> Result<(), String> {
    let mut shipped = vec![0u128; supplies.len()];
    let mut received = vec![0u128; demands.len()];
    let mut total_cost: i128 = 0;
    let mut total_flow: u128 = 0;
    for f in &plan.flows {
        let (i, j) = (f.row as usize, f.col as usize);
        if i >= supplies.len() || j >= demands.len() {
            return Err(format!("flow cell ({i},{j}) out of bounds"));
        }
        if f.flow == 0 {
            return Err(format!("zero-flow entry at ({i},{j})"));
        }
        shipped[i] += f.flow as u128;
        received[j] += f.flow as u128;
        total_cost += f.flow as i128 * cost.at(i, j) as i128;
        total_flow += f.flow as u128;
    }
    for (i, (&s, &got)) in supplies.iter().zip(&shipped).enumerate() {
        if got != s as u128 {
            return Err(format!("supplier {i}: shipped {got}, supply {s}"));
        }
    }
    for (j, (&d, &got)) in demands.iter().zip(&received).enumerate() {
        if got != d as u128 {
            return Err(format!("consumer {j}: received {got}, demand {d}"));
        }
    }
    if total_cost != plan.total_cost {
        return Err(format!(
            "total_cost mismatch: recorded {}, recomputed {}",
            plan.total_cost, total_cost
        ));
    }
    if total_flow != plan.total_flow as u128 {
        return Err(format!(
            "total_flow mismatch: recorded {}, recomputed {}",
            plan.total_flow, total_flow
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_catches_imbalance() {
        let cost = DenseCost::from_rows(&[&[1u32][..]]);
        let plan = TransportPlan {
            flows: vec![FlowEntry {
                row: 0,
                col: 0,
                flow: 3,
            }],
            total_cost: 3,
            total_flow: 3,
        };
        assert!(verify_feasible(&plan, &[3], &[3], &cost).is_ok());
        assert!(verify_feasible(&plan, &[4], &[3], &cost).is_err());
        assert!(verify_feasible(&plan, &[3], &[2], &cost).is_err());
    }

    #[test]
    fn verify_catches_wrong_cost() {
        let cost = DenseCost::from_rows(&[&[5u32][..]]);
        let plan = TransportPlan {
            flows: vec![FlowEntry {
                row: 0,
                col: 0,
                flow: 2,
            }],
            total_cost: 9, // should be 10
            total_flow: 2,
        };
        assert!(verify_feasible(&plan, &[2], &[2], &cost).is_err());
    }

    #[test]
    fn mean_cost_of_empty_plan_is_zero() {
        assert_eq!(TransportPlan::empty().mean_cost(), 0.0);
    }
}
