//! Transportation simplex with MODI (u-v) pivoting and block pricing.
//!
//! The problem is the classic balanced transportation LP: ship `supplies`
//! to `demands` over a dense cost matrix at minimum total cost. The basis is
//! a spanning tree over the bipartite node set (suppliers ∪ consumers) with
//! exactly `m + n − 1` basic cells (some possibly degenerate with zero
//! flow).
//!
//! * Initial basis: the sequential *row-minimum* method — repeatedly
//!   allocate from the current open row to its cheapest open column,
//!   crossing out exactly one line per allocation. Any sequential
//!   one-line-per-allocation method yields a triangular (spanning-tree)
//!   basis, and row-minimum is markedly better than northwest-corner at no
//!   asymptotic cost.
//! * Pricing: block search à la LEMON's network simplex — scan cells in
//!   blocks of ≈√(mn), entering on the most negative reduced cost seen in
//!   the first block that contains one. Optimality is declared only after a
//!   full wrap-around without a negative cell. On large instances
//!   ([`solve`] auto-dispatches, [`solve_par`] forces it) the blocks of a
//!   pricing round are scanned concurrently on the rayon pool in waves and
//!   reduced deterministically: the entering cell is always the same one
//!   the sequential scan would pick, so [`solve_par`] and [`solve_seq`]
//!   are bit-identical (property-tested in `tests/transport_properties.rs`).
//! * Anti-cycling: degenerate pivots are permitted, but a run of more than
//!   `2·(m + n) + 32` consecutive non-improving pivots switches the pivot
//!   to Bland's rule — entering on the first negative cell in (row, col)
//!   order *and* breaking leaving-edge θ-ties by the same (row, col) order
//!   (Bland's theorem needs the smallest-index choice on both sides) —
//!   which provably admits no cycle; the first improving pivot switches
//!   back. Termination: improving pivots strictly decrease the (integer)
//!   objective and are therefore finite in number, and between two of them
//!   at most `streak_limit` block-priced degenerate pivots are followed by
//!   Bland-priced pivots, which cannot cycle.

use crate::dense::DenseCost;
use crate::plan::{FlowEntry, TransportPlan};
use crate::Mass;
use rayon::prelude::*;

/// Minimum number of cells before [`solve`] prices on the thread pool; below
/// this the per-round fan-out overhead outweighs the scan.
const PAR_PRICING_MIN_CELLS: usize = 1 << 14;

#[derive(Clone, Copy, Debug)]
struct BasisCell {
    row: u32,
    col: u32,
    flow: Mass,
}

/// Solves a balanced transportation problem with all-positive supplies and
/// demands (callers strip zeros first; see [`crate::solve_balanced`]).
///
/// Pricing runs on the rayon pool when the instance is large enough to pay
/// for the fan-out and more than one thread is available; the result is
/// bit-identical either way.
pub fn solve(supplies: &[Mass], demands: &[Mass], cost: &DenseCost) -> TransportPlan {
    let parallel =
        supplies.len() * demands.len() >= PAR_PRICING_MIN_CELLS && rayon::current_num_threads() > 1;
    solve_impl(
        supplies,
        demands,
        cost,
        parallel,
        default_streak_limit(supplies, demands),
    )
}

/// [`solve`] with pricing forced onto the sequential path — the reference
/// implementation the parallel path is property-tested against.
pub fn solve_seq(supplies: &[Mass], demands: &[Mass], cost: &DenseCost) -> TransportPlan {
    solve_impl(
        supplies,
        demands,
        cost,
        false,
        default_streak_limit(supplies, demands),
    )
}

/// [`solve`] with pricing forced onto the parallel path regardless of
/// instance size. Bit-identical to [`solve_seq`].
pub fn solve_par(supplies: &[Mass], demands: &[Mass], cost: &DenseCost) -> TransportPlan {
    solve_impl(
        supplies,
        demands,
        cost,
        true,
        default_streak_limit(supplies, demands),
    )
}

/// Consecutive degenerate pivots tolerated before Bland's rule takes over.
fn default_streak_limit(supplies: &[Mass], demands: &[Mass]) -> usize {
    2 * (supplies.len() + demands.len()) + 32
}

fn solve_impl(
    supplies: &[Mass],
    demands: &[Mass],
    cost: &DenseCost,
    parallel: bool,
    streak_limit: usize,
) -> TransportPlan {
    let m = supplies.len();
    let n = demands.len();
    debug_assert!(m > 0 && n > 0);
    debug_assert!(supplies.iter().all(|&s| s > 0));
    debug_assert!(demands.iter().all(|&d| d > 0));

    let mut basis = initial_basis(supplies, demands, cost);
    debug_assert_eq!(basis.len(), m + n - 1);

    // Node indexing for the basis tree: suppliers 0..m, consumers m..m+n.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); m + n];
    let mut u = vec![0i64; m];
    let mut v = vec![0i64; n];
    let mut visit = vec![false; m + n];
    let mut parent_cell = vec![u32::MAX; m + n];
    let mut queue: Vec<u32> = Vec::with_capacity(m + n);

    let cells_total = m * n;
    let block = ((cells_total as f64).sqrt() as usize)
        .max(64)
        .min(cells_total.max(1));
    let mut scan_pos = 0usize;

    let mut degenerate_streak = 0usize;
    let mut bland = false;

    loop {
        for list in adj.iter_mut() {
            list.clear();
        }
        for (k, cell) in basis.iter().enumerate() {
            adj[cell.row as usize].push(k as u32);
            // lint:allow(lossy-cast) u32 column id → usize index; not mass/cost arithmetic
            adj[m + cell.col as usize].push(k as u32);
        }
        compute_duals(
            &basis, &adj, cost, m, &mut u, &mut v, &mut visit, &mut queue,
        );

        let entering = if bland {
            price_bland(cost, &u, &v, m, n)
        } else {
            price_blocks(cost, &u, &v, n, block, &mut scan_pos, parallel)
        };
        let Some((ei, ej)) = entering else {
            break; // optimal
        };

        let path = tree_path(
            &basis,
            &adj,
            m,
            ei as u32,
            (m + ej) as u32,
            &mut parent_cell,
            &mut queue,
        );

        // The entering cell (ei, ej) is a "+" edge of the pivot cycle.
        // Walking the tree path from supplier ei towards consumer ej, the
        // first edge shares supplier ei's row with the entering cell, so the
        // path edges alternate "−", "+", "−", … starting at "−".
        //
        // Bland's no-cycling theorem needs Bland on *both* pivot choices:
        // in Bland mode, θ-ties on the leaving edge break by smallest
        // (row, col) — the same variable order `price_bland` scans — rather
        // than by path position.
        let mut theta = Mass::MAX;
        let mut leaving_pos = usize::MAX;
        for (idx, &cell_id) in path.iter().enumerate() {
            if idx % 2 == 0 {
                let cell = basis[cell_id as usize];
                // First "−" edge is accepted unconditionally (no sentinel
                // compare: `Mass::MAX` is a legal flow).
                let better = leaving_pos == usize::MAX
                    || cell.flow < theta
                    || (bland && cell.flow == theta && {
                        let cur = basis[path[leaving_pos] as usize];
                        (cell.row, cell.col) < (cur.row, cur.col)
                    });
                if better {
                    theta = cell.flow;
                    leaving_pos = idx;
                }
            }
        }
        debug_assert!(leaving_pos != usize::MAX, "cycle must contain a '−' edge");

        for (idx, &cell_id) in path.iter().enumerate() {
            let cell = &mut basis[cell_id as usize];
            if idx % 2 == 0 {
                cell.flow -= theta;
            } else {
                cell.flow += theta;
            }
        }
        let leaving_id = path[leaving_pos] as usize;
        basis[leaving_id] = BasisCell {
            row: ei as u32,
            col: ej as u32,
            flow: theta,
        };

        // Anti-cycling bookkeeping: a long run of degenerate (θ = 0) pivots
        // is the only way the simplex can stall, so Bland's rule takes over
        // until an improving pivot breaks the streak.
        if theta == 0 {
            degenerate_streak += 1;
            if degenerate_streak > streak_limit {
                bland = true;
            }
        } else {
            degenerate_streak = 0;
            bland = false;
        }
    }

    let mut flows: Vec<FlowEntry> = basis
        .iter()
        .filter(|c| c.flow > 0)
        .map(|c| FlowEntry {
            row: c.row,
            col: c.col,
            flow: c.flow,
        })
        .collect();
    flows.sort_by_key(|f| (f.row, f.col));
    let total_cost = flows
        .iter()
        .map(|f| f.flow as i128 * cost.at(f.row as usize, f.col as usize) as i128)
        .sum();
    let total_flow = flows.iter().map(|f| f.flow).sum();
    TransportPlan {
        flows,
        total_cost,
        total_flow,
    }
}

/// Sequential row-minimum initial basis: exactly `m + n − 1` cells forming a
/// spanning tree (one line crossed out per allocation, both on the last).
fn initial_basis(supplies: &[Mass], demands: &[Mass], cost: &DenseCost) -> Vec<BasisCell> {
    let m = supplies.len();
    let n = demands.len();
    let mut rs = supplies.to_vec();
    let mut rd = demands.to_vec();
    let mut row_open = vec![true; m];
    let mut col_open = vec![true; n];
    let mut open_rows = m;
    let mut open_cols = n;
    let mut basis = Vec::with_capacity(m + n - 1);

    let mut i = 0usize;
    while open_rows > 0 && open_cols > 0 {
        while !row_open[i] {
            i += 1;
            if i == m {
                i = 0;
            }
        }
        // Cheapest open column in row i. No cost sentinel: a row whose open
        // columns all cost `u32::MAX` must still get an allocation.
        let row = cost.row(i);
        let mut best_j = usize::MAX;
        let mut best_c = 0u32;
        for (j, &open) in col_open.iter().enumerate() {
            if open && (best_j == usize::MAX || row[j] < best_c) {
                best_c = row[j];
                best_j = j;
            }
        }
        debug_assert!(best_j != usize::MAX);
        let j = best_j;
        let x = rs[i].min(rd[j]);
        basis.push(BasisCell {
            row: i as u32,
            col: j as u32,
            flow: x,
        });
        rs[i] -= x;
        rd[j] -= x;
        if open_rows == 1 && open_cols == 1 {
            // Final allocation closes both lines.
            row_open[i] = false;
            col_open[j] = false;
            open_rows -= 1;
            open_cols -= 1;
        } else if rs[i] == 0 && (rd[j] > 0 || open_rows > 1) {
            row_open[i] = false;
            open_rows -= 1;
        } else {
            // Either the column is exhausted, or both are and this is the
            // last open row: cross out the column, keep the (possibly
            // zero-supply) row for a later degenerate allocation.
            col_open[j] = false;
            open_cols -= 1;
        }
    }
    basis
}

/// Computes duals `u`, `v` with `u[i] + v[j] = c[i][j]` on basic cells by
/// BFS over the basis spanning tree rooted at supplier 0.
#[allow(clippy::too_many_arguments)]
fn compute_duals(
    basis: &[BasisCell],
    adj: &[Vec<u32>],
    cost: &DenseCost,
    m: usize,
    u: &mut [i64],
    v: &mut [i64],
    visit: &mut [bool],
    queue: &mut Vec<u32>,
) {
    for x in visit.iter_mut() {
        *x = false;
    }
    u[0] = 0;
    visit[0] = true;
    queue.clear();
    queue.push(0);
    let mut head = 0;
    while head < queue.len() {
        let node = queue[head] as usize;
        head += 1;
        for &cell_id in &adj[node] {
            let cell = basis[cell_id as usize];
            let row_node = cell.row as usize;
            // lint:allow(lossy-cast) u32 column id → usize index; not mass/cost arithmetic
            let col_node = m + cell.col as usize;
            let other = if node == row_node { col_node } else { row_node };
            if !visit[other] {
                visit[other] = true;
                let c = cost.at(cell.row as usize, cell.col as usize) as i64;
                if other == col_node {
                    v[cell.col as usize] = c - u[row_node];
                } else {
                    u[cell.row as usize] = c - v[cell.col as usize];
                }
                queue.push(other as u32);
            }
        }
    }
    debug_assert_eq!(queue.len(), adj.len(), "basis must be a spanning tree");
}

/// Scans scan-order offsets `lo..hi` (relative to `start`, wrapping at
/// `total`) and returns the most negative reduced cost with the earliest
/// offset achieving it. The shared kernel of both pricing paths.
#[allow(clippy::too_many_arguments)] // mirrors compute_duals: hot-loop slices stay unbundled
fn scan_cells(
    cost: &DenseCost,
    u: &[i64],
    v: &[i64],
    n: usize,
    start: usize,
    total: usize,
    lo: usize,
    hi: usize,
) -> Option<(i64, usize)> {
    let mut best: Option<(i64, usize)> = None;
    for off in lo..hi {
        let mut pos = start + off;
        if pos >= total {
            pos -= total;
        }
        let i = pos / n;
        let j = pos - i * n;
        // lint:allow(lossy-cast) cost entries are u32; u32 → i64 is exact
        let r = cost.at(i, j) as i64 - u[i] - v[j];
        if r < 0 && best.is_none_or(|(b, _)| r < b) {
            best = Some((r, off));
        }
    }
    best
}

/// Block pricing: scans cells cyclically in blocks, returning the most
/// negative reduced-cost cell of the first block that has one.
///
/// `parallel` chooses how each wave of blocks is scanned — on the rayon
/// pool or inline — but never *what* is returned: blocks are inspected in
/// scan order and ties resolve to the earliest-scanned cell, so both modes
/// pick the identical entering cell and leave `scan_pos` identical.
fn price_blocks(
    cost: &DenseCost,
    u: &[i64],
    v: &[i64],
    n: usize,
    block: usize,
    scan_pos: &mut usize,
    parallel: bool,
) -> Option<(usize, usize)> {
    let total = u.len() * n;
    let start = *scan_pos;
    let num_blocks = total.div_ceil(block);
    let scan_block = |bk: usize| {
        let lo = bk * block;
        scan_cells(cost, u, v, n, start, total, lo, (lo + block).min(total))
    };
    let mut hit: Option<(usize, usize)> = None; // (block, offset)
    if parallel {
        // Waves of blocks fan out over the pool; the first block (in scan
        // order) containing a negative cell wins, exactly as sequentially.
        let wave = (rayon::current_num_threads() * 2).max(1);
        let mut bk0 = 0;
        'waves: while bk0 < num_blocks {
            let bk1 = (bk0 + wave).min(num_blocks);
            let results: Vec<Option<(i64, usize)>> =
                (bk0..bk1).into_par_iter().map(scan_block).collect();
            for (i, res) in results.into_iter().enumerate() {
                if let Some((_, off)) = res {
                    hit = Some((bk0 + i, off));
                    break 'waves;
                }
            }
            bk0 = bk1;
        }
    } else {
        for bk in 0..num_blocks {
            if let Some((_, off)) = scan_block(bk) {
                hit = Some((bk, off));
                break;
            }
        }
    }
    let (bk, off) = hit?;
    *scan_pos = (start + ((bk + 1) * block).min(total)) % total;
    let mut pos = start + off;
    if pos >= total {
        pos -= total;
    }
    Some((pos / n, pos - (pos / n) * n))
}

/// Bland's rule: first negative reduced-cost cell in index order.
fn price_bland(
    cost: &DenseCost,
    u: &[i64],
    v: &[i64],
    m: usize,
    _n: usize,
) -> Option<(usize, usize)> {
    for (i, &ui) in u.iter().enumerate().take(m) {
        let row = cost.row(i);
        for (j, &c) in row.iter().enumerate() {
            if (c as i64) - ui - v[j] < 0 {
                return Some((i, j));
            }
        }
    }
    None
}

/// Returns the basis-cell ids along the unique tree path from node `from`
/// to node `to` (node ids: suppliers `0..m`, consumers `m..m+n`), ordered
/// from the `from` end.
fn tree_path(
    basis: &[BasisCell],
    adj: &[Vec<u32>],
    m: usize,
    from: u32,
    to: u32,
    parent_cell: &mut [u32],
    queue: &mut Vec<u32>,
) -> Vec<u32> {
    const UNVISITED: u32 = u32::MAX;
    const ROOT: u32 = u32::MAX - 1;
    for x in parent_cell.iter_mut() {
        *x = UNVISITED;
    }
    parent_cell[from as usize] = ROOT;
    queue.clear();
    queue.push(from);
    let mut head = 0;
    while head < queue.len() {
        let node = queue[head] as usize;
        head += 1;
        // lint:allow(lossy-cast) tree nodes index m + n u32 ids, so they fit u32
        if node as u32 == to {
            break;
        }
        for &cell_id in &adj[node] {
            let cell = basis[cell_id as usize];
            let row_node = cell.row as usize;
            // lint:allow(lossy-cast) u32 column id → usize index; not mass/cost arithmetic
            let col_node = m + cell.col as usize;
            let other = if node == row_node { col_node } else { row_node };
            if parent_cell[other] == UNVISITED {
                parent_cell[other] = cell_id;
                queue.push(other as u32);
            }
        }
    }
    debug_assert!(
        parent_cell[to as usize] != UNVISITED,
        "tree must connect nodes"
    );

    // Walk parents back from `to`, then reverse to get from-first order.
    let mut path = Vec::new();
    let mut node = to as usize;
    while parent_cell[node] != ROOT {
        let cell_id = parent_cell[node];
        path.push(cell_id);
        let cell = basis[cell_id as usize];
        let row_node = cell.row as usize;
        // lint:allow(lossy-cast) u32 column id → usize index; not mass/cost arithmetic
        let col_node = m + cell.col as usize;
        node = if node == row_node { col_node } else { row_node };
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn initial_basis_has_tree_size() {
        let cost = DenseCost::from_rows(&[&[3u32, 1, 7][..], &[2, 6, 5][..]]);
        let basis = initial_basis(&[10, 20], &[5, 15, 10], &cost);
        assert_eq!(basis.len(), 2 + 3 - 1);
        // Flows must be feasible.
        let mut shipped = [0u64; 2];
        let mut recv = [0u64; 3];
        for c in &basis {
            shipped[c.row as usize] += c.flow;
            recv[c.col as usize] += c.flow;
        }
        assert_eq!(shipped, [10, 20]);
        assert_eq!(recv, [5, 15, 10]);
    }

    /// Regression (found by `tests/transport_fuzz.rs`): rows whose open
    /// columns all cost exactly `u32::MAX` used to hit the `best_c`
    /// sentinel and leave the row unallocated.
    #[test]
    fn saturated_max_costs_still_build_a_basis() {
        let cost = DenseCost::filled(2, 2, u32::MAX);
        let basis = initial_basis(&[3, 4], &[5, 2], &cost);
        assert_eq!(basis.len(), 3);
        let plan = solve(&[3, 4], &[5, 2], &cost);
        assert_eq!(plan.total_flow, 7);
        assert_eq!(plan.total_cost, 7 * u32::MAX as i128);
    }

    #[test]
    fn degenerate_initial_basis_still_tree_sized() {
        // Supply and demand exhaust simultaneously mid-way.
        let cost = DenseCost::from_rows(&[&[1u32, 9][..], &[9, 1][..]]);
        let basis = initial_basis(&[5, 5], &[5, 5], &cost);
        assert_eq!(basis.len(), 3);
    }

    #[test]
    fn identity_costs_keep_mass_in_place() {
        // Zero diagonal, expensive off-diagonal: optimum is the diagonal.
        let cost = DenseCost::from_rows(&[&[0u32, 5, 5][..], &[5, 0, 5][..], &[5, 5, 0][..]]);
        let plan = solve(&[1, 2, 3], &[1, 2, 3], &cost);
        assert_eq!(plan.total_cost, 0);
    }

    /// Regression: maximally degenerate assignment-shaped instances (all
    /// supplies/demands equal, heavy cost ties) must terminate and still be
    /// optimal. These are the instances where every pivot moves θ = 0 and a
    /// pricing rule without an anti-cycling safeguard can loop forever.
    #[test]
    fn degenerate_assignment_instances_terminate_optimally() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [4usize, 8, 12] {
            // Two-valued cost matrix: maximal ties.
            let data: Vec<u32> = (0..n * n).map(|_| u32::from(rng.gen_bool(0.5))).collect();
            let cost = DenseCost::from_vec(n, n, data);
            let unit = vec![1u64; n];
            let reference = crate::ssp::solve(&unit, &unit, &cost);
            let plan = solve(&unit, &unit, &cost);
            assert_eq!(plan.total_cost, reference.total_cost, "n = {n}");
            assert_eq!(plan.total_flow, n as u64);
        }
    }

    /// Bland's rule is exercised directly by forcing the streak limit to
    /// zero: the very first degenerate pivot flips pricing over, and the
    /// result must still be the optimum.
    #[test]
    fn bland_fallback_is_optimal() {
        let mut rng = SmallRng::seed_from_u64(11);
        for trial in 0..20 {
            let m = rng.gen_range(2..6);
            let n = rng.gen_range(2..6);
            let cost = DenseCost::random(m, n, 0..4, &mut rng);
            let mut supplies = vec![2u64; m];
            let mut demands = vec![2u64; n];
            let (ts, td) = (2 * m as u64, 2 * n as u64);
            if ts > td {
                demands[n - 1] += ts - td;
            } else {
                supplies[m - 1] += td - ts;
            }
            let reference = crate::ssp::solve(&supplies, &demands, &cost);
            let plan = solve_impl(&supplies, &demands, &cost, false, 0);
            assert_eq!(plan.total_cost, reference.total_cost, "trial {trial}");
        }
    }

    /// In-module smoke check of parallel/sequential pricing equivalence;
    /// the full property test lives in `tests/transport_properties.rs`.
    #[test]
    fn parallel_pricing_matches_sequential() {
        let mut rng = SmallRng::seed_from_u64(23);
        for trial in 0..10 {
            let m = rng.gen_range(1..20);
            let n = rng.gen_range(1..20);
            let cost = DenseCost::random(m, n, 0..30, &mut rng);
            let mut supplies: Vec<u64> = (0..m).map(|_| rng.gen_range(1..40)).collect();
            let mut demands: Vec<u64> = (0..n).map(|_| rng.gen_range(1..40)).collect();
            let (ts, td): (u64, u64) = (supplies.iter().sum(), demands.iter().sum());
            if ts > td {
                demands[n - 1] += ts - td;
            } else {
                supplies[m - 1] += td - ts;
            }
            let seq = solve_seq(&supplies, &demands, &cost);
            let par = solve_par(&supplies, &demands, &cost);
            assert_eq!(seq, par, "trial {trial}: plans must be bit-identical");
        }
    }
}
