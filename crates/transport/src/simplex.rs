//! Transportation simplex with MODI (u-v) pivoting and block pricing.
//!
//! The problem is the classic balanced transportation LP: ship `supplies`
//! to `demands` over a dense cost matrix at minimum total cost. The basis is
//! a spanning tree over the bipartite node set (suppliers ∪ consumers) with
//! exactly `m + n − 1` basic cells (some possibly degenerate with zero
//! flow).
//!
//! * Initial basis: the sequential *row-minimum* method — repeatedly
//!   allocate from the current open row to its cheapest open column,
//!   crossing out exactly one line per allocation. Any sequential
//!   one-line-per-allocation method yields a triangular (spanning-tree)
//!   basis, and row-minimum is markedly better than northwest-corner at no
//!   asymptotic cost.
//! * Pricing: block search à la LEMON's network simplex — scan cells in
//!   blocks of ≈√(mn), entering on the most negative reduced cost seen in
//!   the first block that contains one. Optimality is declared only after a
//!   full wrap-around without a negative cell.
//! * Anti-cycling: degenerate pivots are permitted; if an instance exceeds a
//!   generous pivot budget the pricing falls back to Bland's rule (first
//!   negative cell in index order), which provably terminates.

use crate::dense::DenseCost;
use crate::plan::{FlowEntry, TransportPlan};
use crate::Mass;

#[derive(Clone, Copy, Debug)]
struct BasisCell {
    row: u32,
    col: u32,
    flow: Mass,
}

/// Solves a balanced transportation problem with all-positive supplies and
/// demands (callers strip zeros first; see [`crate::solve_balanced`]).
pub fn solve(supplies: &[Mass], demands: &[Mass], cost: &DenseCost) -> TransportPlan {
    let m = supplies.len();
    let n = demands.len();
    debug_assert!(m > 0 && n > 0);
    debug_assert!(supplies.iter().all(|&s| s > 0));
    debug_assert!(demands.iter().all(|&d| d > 0));

    let mut basis = initial_basis(supplies, demands, cost);
    debug_assert_eq!(basis.len(), m + n - 1);

    // Node indexing for the basis tree: suppliers 0..m, consumers m..m+n.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); m + n];
    let mut u = vec![0i64; m];
    let mut v = vec![0i64; n];
    let mut visit = vec![false; m + n];
    let mut parent_cell = vec![u32::MAX; m + n];
    let mut queue: Vec<u32> = Vec::with_capacity(m + n);

    let cells_total = m * n;
    let block = ((cells_total as f64).sqrt() as usize)
        .max(64)
        .min(cells_total.max(1));
    let mut scan_pos = 0usize;

    // Generous pivot budget before switching to Bland's rule; the budget is
    // not hit in practice but guarantees termination under degeneracy.
    let budget = 500 * (m + n) + 10_000;
    let mut pivots = 0usize;
    let mut bland = false;

    loop {
        for list in adj.iter_mut() {
            list.clear();
        }
        for (k, cell) in basis.iter().enumerate() {
            adj[cell.row as usize].push(k as u32);
            adj[m + cell.col as usize].push(k as u32);
        }
        compute_duals(
            &basis, &adj, cost, m, &mut u, &mut v, &mut visit, &mut queue,
        );

        let entering = if bland {
            price_bland(cost, &u, &v, m, n)
        } else {
            price_block(cost, &u, &v, n, block, &mut scan_pos)
        };
        let Some((ei, ej)) = entering else {
            break; // optimal
        };

        let path = tree_path(
            &basis,
            &adj,
            m,
            ei as u32,
            (m + ej) as u32,
            &mut parent_cell,
            &mut queue,
        );

        // The entering cell (ei, ej) is a "+" edge of the pivot cycle.
        // Walking the tree path from supplier ei towards consumer ej, the
        // first edge shares supplier ei's row with the entering cell, so the
        // path edges alternate "−", "+", "−", … starting at "−".
        let mut theta = Mass::MAX;
        let mut leaving_pos = usize::MAX;
        for (idx, &cell_id) in path.iter().enumerate() {
            if idx % 2 == 0 {
                let f = basis[cell_id as usize].flow;
                if f < theta {
                    theta = f;
                    leaving_pos = idx;
                }
            }
        }
        debug_assert!(leaving_pos != usize::MAX, "cycle must contain a '−' edge");

        for (idx, &cell_id) in path.iter().enumerate() {
            let cell = &mut basis[cell_id as usize];
            if idx % 2 == 0 {
                cell.flow -= theta;
            } else {
                cell.flow += theta;
            }
        }
        let leaving_id = path[leaving_pos] as usize;
        basis[leaving_id] = BasisCell {
            row: ei as u32,
            col: ej as u32,
            flow: theta,
        };

        pivots += 1;
        if pivots > budget && !bland {
            bland = true;
        }
    }

    let mut flows: Vec<FlowEntry> = basis
        .iter()
        .filter(|c| c.flow > 0)
        .map(|c| FlowEntry {
            row: c.row,
            col: c.col,
            flow: c.flow,
        })
        .collect();
    flows.sort_by_key(|f| (f.row, f.col));
    let total_cost = flows
        .iter()
        .map(|f| f.flow as i128 * cost.at(f.row as usize, f.col as usize) as i128)
        .sum();
    let total_flow = flows.iter().map(|f| f.flow).sum();
    TransportPlan {
        flows,
        total_cost,
        total_flow,
    }
}

/// Sequential row-minimum initial basis: exactly `m + n − 1` cells forming a
/// spanning tree (one line crossed out per allocation, both on the last).
fn initial_basis(supplies: &[Mass], demands: &[Mass], cost: &DenseCost) -> Vec<BasisCell> {
    let m = supplies.len();
    let n = demands.len();
    let mut rs = supplies.to_vec();
    let mut rd = demands.to_vec();
    let mut row_open = vec![true; m];
    let mut col_open = vec![true; n];
    let mut open_rows = m;
    let mut open_cols = n;
    let mut basis = Vec::with_capacity(m + n - 1);

    let mut i = 0usize;
    while open_rows > 0 && open_cols > 0 {
        while !row_open[i] {
            i += 1;
            if i == m {
                i = 0;
            }
        }
        // Cheapest open column in row i.
        let row = cost.row(i);
        let mut best_j = usize::MAX;
        let mut best_c = u32::MAX;
        for (j, &open) in col_open.iter().enumerate() {
            if open && row[j] < best_c {
                best_c = row[j];
                best_j = j;
            }
        }
        debug_assert!(best_j != usize::MAX);
        let j = best_j;
        let x = rs[i].min(rd[j]);
        basis.push(BasisCell {
            row: i as u32,
            col: j as u32,
            flow: x,
        });
        rs[i] -= x;
        rd[j] -= x;
        if open_rows == 1 && open_cols == 1 {
            // Final allocation closes both lines.
            row_open[i] = false;
            col_open[j] = false;
            open_rows -= 1;
            open_cols -= 1;
        } else if rs[i] == 0 && (rd[j] > 0 || open_rows > 1) {
            row_open[i] = false;
            open_rows -= 1;
        } else {
            // Either the column is exhausted, or both are and this is the
            // last open row: cross out the column, keep the (possibly
            // zero-supply) row for a later degenerate allocation.
            col_open[j] = false;
            open_cols -= 1;
        }
    }
    basis
}

/// Computes duals `u`, `v` with `u[i] + v[j] = c[i][j]` on basic cells by
/// BFS over the basis spanning tree rooted at supplier 0.
#[allow(clippy::too_many_arguments)]
fn compute_duals(
    basis: &[BasisCell],
    adj: &[Vec<u32>],
    cost: &DenseCost,
    m: usize,
    u: &mut [i64],
    v: &mut [i64],
    visit: &mut [bool],
    queue: &mut Vec<u32>,
) {
    for x in visit.iter_mut() {
        *x = false;
    }
    u[0] = 0;
    visit[0] = true;
    queue.clear();
    queue.push(0);
    let mut head = 0;
    while head < queue.len() {
        let node = queue[head] as usize;
        head += 1;
        for &cell_id in &adj[node] {
            let cell = basis[cell_id as usize];
            let row_node = cell.row as usize;
            let col_node = m + cell.col as usize;
            let other = if node == row_node { col_node } else { row_node };
            if !visit[other] {
                visit[other] = true;
                let c = cost.at(cell.row as usize, cell.col as usize) as i64;
                if other == col_node {
                    v[cell.col as usize] = c - u[row_node];
                } else {
                    u[cell.row as usize] = c - v[cell.col as usize];
                }
                queue.push(other as u32);
            }
        }
    }
    debug_assert_eq!(queue.len(), adj.len(), "basis must be a spanning tree");
}

/// Block pricing: scans cells cyclically in blocks, returning the most
/// negative reduced-cost cell of the first block that has one.
fn price_block(
    cost: &DenseCost,
    u: &[i64],
    v: &[i64],
    n: usize,
    block: usize,
    scan_pos: &mut usize,
) -> Option<(usize, usize)> {
    let total = u.len() * n;
    let mut examined = 0usize;
    let mut best: Option<(i64, usize)> = None;
    let mut pos = *scan_pos;
    while examined < total {
        let end_of_block = examined + block.min(total - examined);
        while examined < end_of_block {
            let i = pos / n;
            let j = pos - i * n;
            let r = cost.at(i, j) as i64 - u[i] - v[j];
            if r < 0 && best.is_none_or(|(b, _)| r < b) {
                best = Some((r, pos));
            }
            pos += 1;
            if pos == total {
                pos = 0;
            }
            examined += 1;
        }
        if let Some((_, p)) = best {
            *scan_pos = pos;
            return Some((p / n, p - (p / n) * n));
        }
    }
    None
}

/// Bland's rule: first negative reduced-cost cell in index order.
fn price_bland(
    cost: &DenseCost,
    u: &[i64],
    v: &[i64],
    m: usize,
    _n: usize,
) -> Option<(usize, usize)> {
    for (i, &ui) in u.iter().enumerate().take(m) {
        let row = cost.row(i);
        for (j, &c) in row.iter().enumerate() {
            if (c as i64) - ui - v[j] < 0 {
                return Some((i, j));
            }
        }
    }
    None
}

/// Returns the basis-cell ids along the unique tree path from node `from`
/// to node `to` (node ids: suppliers `0..m`, consumers `m..m+n`), ordered
/// from the `from` end.
fn tree_path(
    basis: &[BasisCell],
    adj: &[Vec<u32>],
    m: usize,
    from: u32,
    to: u32,
    parent_cell: &mut [u32],
    queue: &mut Vec<u32>,
) -> Vec<u32> {
    const UNVISITED: u32 = u32::MAX;
    const ROOT: u32 = u32::MAX - 1;
    for x in parent_cell.iter_mut() {
        *x = UNVISITED;
    }
    parent_cell[from as usize] = ROOT;
    queue.clear();
    queue.push(from);
    let mut head = 0;
    while head < queue.len() {
        let node = queue[head] as usize;
        head += 1;
        if node as u32 == to {
            break;
        }
        for &cell_id in &adj[node] {
            let cell = basis[cell_id as usize];
            let row_node = cell.row as usize;
            let col_node = m + cell.col as usize;
            let other = if node == row_node { col_node } else { row_node };
            if parent_cell[other] == UNVISITED {
                parent_cell[other] = cell_id;
                queue.push(other as u32);
            }
        }
    }
    debug_assert!(
        parent_cell[to as usize] != UNVISITED,
        "tree must connect nodes"
    );

    // Walk parents back from `to`, then reverse to get from-first order.
    let mut path = Vec::new();
    let mut node = to as usize;
    while parent_cell[node] != ROOT {
        let cell_id = parent_cell[node];
        path.push(cell_id);
        let cell = basis[cell_id as usize];
        let row_node = cell.row as usize;
        let col_node = m + cell.col as usize;
        node = if node == row_node { col_node } else { row_node };
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_basis_has_tree_size() {
        let cost = DenseCost::from_rows(&[&[3u32, 1, 7][..], &[2, 6, 5][..]]);
        let basis = initial_basis(&[10, 20], &[5, 15, 10], &cost);
        assert_eq!(basis.len(), 2 + 3 - 1);
        // Flows must be feasible.
        let mut shipped = [0u64; 2];
        let mut recv = [0u64; 3];
        for c in &basis {
            shipped[c.row as usize] += c.flow;
            recv[c.col as usize] += c.flow;
        }
        assert_eq!(shipped, [10, 20]);
        assert_eq!(recv, [5, 15, 10]);
    }

    #[test]
    fn degenerate_initial_basis_still_tree_sized() {
        // Supply and demand exhaust simultaneously mid-way.
        let cost = DenseCost::from_rows(&[&[1u32, 9][..], &[9, 1][..]]);
        let basis = initial_basis(&[5, 5], &[5, 5], &cost);
        assert_eq!(basis.len(), 3);
    }

    #[test]
    fn identity_costs_keep_mass_in_place() {
        // Zero diagonal, expensive off-diagonal: optimum is the diagonal.
        let cost = DenseCost::from_rows(&[&[0u32, 5, 5][..], &[5, 0, 5][..], &[5, 5, 0][..]]);
        let plan = solve(&[1, 2, 3], &[1, 2, 3], &cost);
        assert_eq!(plan.total_cost, 0);
    }
}
