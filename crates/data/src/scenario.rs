//! The scenario registry: named, reproducible simulation specs.
//!
//! A [`Scenario`] composes everything a forward-simulated evaluation series
//! needs — a graph generator ([`GraphSpec`]), an initial seeding, an
//! opinion-dynamics model ([`ModelSpec`], built into an
//! [`OpinionDynamics`] kernel at run time), and an anomaly-injection
//! schedule ([`AnomalyPlacement`], the §6.2 mechanism-shift pattern
//! generalized to any model pair) — into a single seeded spec.
//! [`Scenario::run`] turns a spec plus a seed into a labelled
//! [`SyntheticSeries`], the exact shape the analysis layer, the dataset
//! JSON format, and every `snd` subcommand consume.
//!
//! The built-in [`registry`] covers one scenario per model family (the
//! paper's voting/ICC/LTC/random processes plus majority rule, stubborn
//! voters, thresholded DeGroot and bounded confidence); `snd simulate
//! --list` prints it. Adding a scenario is one entry here; adding a model
//! family is a ~50-line [`OpinionDynamics`] impl plus a [`ModelSpec`]
//! variant.

use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd_graph::{generators, CsrGraph};
use snd_models::dynamics::{seed_initial_adopters, VotingConfig};
use snd_models::process::{
    BoundedConfidence, IndependentCascade, LinearThreshold, MajorityRule, RandomActivation,
    StubbornVoter, ThresholdedDeGroot, Voting,
};
use snd_models::{ModelError, OpinionDynamics};

use crate::synthetic::SyntheticSeries;

/// A scenario that cannot be run as configured.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// A model parameter failed validation.
    Model(ModelError),
    /// An explicit anomalous step at or past `steps`.
    AnomalousStepOutOfRange {
        /// The offending transition index.
        step: usize,
        /// Number of transitions in the run.
        steps: usize,
    },
    /// Too few nodes for the scenario's graph generator.
    TooFewNodes {
        /// Requested node count.
        nodes: usize,
        /// Minimum the generator supports.
        min: usize,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Model(e) => write!(f, "invalid model parameters: {e}"),
            ScenarioError::AnomalousStepOutOfRange { step, steps } => {
                write!(f, "anomalous step {step} out of range for {steps} steps")
            }
            ScenarioError::TooFewNodes { nodes, min } => {
                write!(
                    f,
                    "{nodes} node(s) is below the scenario's minimum of {min}"
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ModelError> for ScenarioError {
    fn from(e: ModelError) -> Self {
        ScenarioError::Model(e)
    }
}

/// Graph topology of a scenario. Sizes are given at run time so one spec
/// scales from CI smoke to benchmark size.
#[derive(Clone, Debug)]
pub enum GraphSpec {
    /// Scale-free configuration model (the paper's synthetic topology).
    ScaleFree {
        /// Degree exponent (negative).
        exponent: f64,
        /// Minimum degree.
        k_min: usize,
    },
    /// Barabási–Albert preferential attachment.
    BarabasiAlbert {
        /// Edges attached per new node.
        m: usize,
    },
    /// Two dense communities joined by a few bridge ties — the topology
    /// where polarization-preserving dynamics are visible.
    TwoClusterBridge {
        /// Intra-cluster tie probability.
        intra_p: f64,
        /// Number of bridge ties.
        bridges: usize,
    },
}

impl GraphSpec {
    /// Builds the graph over `nodes` users.
    pub fn build(&self, nodes: usize, rng: &mut SmallRng) -> CsrGraph {
        match *self {
            GraphSpec::ScaleFree { exponent, k_min } => {
                let k_max = (nodes / 50).clamp(8, 1000);
                generators::scale_free_configuration(nodes, exponent, k_min, k_max, rng)
            }
            GraphSpec::BarabasiAlbert { m } => generators::barabasi_albert(nodes, m, rng),
            GraphSpec::TwoClusterBridge { intra_p, bridges } => {
                generators::two_cluster_bridge(nodes / 2, intra_p, bridges, rng)
            }
        }
    }

    /// Smallest node count the generator supports without degenerating
    /// (below it the underlying generators panic on impossible degree or
    /// cluster constraints).
    pub fn min_nodes(&self) -> usize {
        match *self {
            // The configuration model needs n > k_max, and k_max is
            // clamped to at least 8 for small networks.
            GraphSpec::ScaleFree { .. } => 10,
            // Preferential attachment needs n > m.
            GraphSpec::BarabasiAlbert { m } => m + 1,
            // Two clusters of at least two users each.
            GraphSpec::TwoClusterBridge { .. } => 4,
        }
    }

    /// Short display name for `--list` output.
    pub fn label(&self) -> &'static str {
        match self {
            GraphSpec::ScaleFree { .. } => "scale-free",
            GraphSpec::BarabasiAlbert { .. } => "barabasi-albert",
            GraphSpec::TwoClusterBridge { .. } => "two-cluster",
        }
    }
}

/// A buildable model specification: sizes expressed as fractions of `n` so
/// one spec scales with the run's node count.
#[derive(Clone, Debug)]
pub enum ModelSpec {
    /// Probabilistic voting; `chance_fraction` bounds per-step activation
    /// chances to a fraction of the network (`None` = full sweep).
    Voting {
        /// Neighbor-adoption probability.
        p_nbr: f64,
        /// External-adoption probability.
        p_ext: f64,
        /// Fraction of users offered a chance per step.
        chance_fraction: Option<f64>,
    },
    /// Independent Cascade with Competition (weighted-cascade edges).
    Icc,
    /// Linear Threshold with Competition (uniform threshold).
    Ltc {
        /// Per-user activation threshold.
        threshold: f64,
    },
    /// Structure-oblivious random activation of a fixed user fraction.
    RandomActivation {
        /// Fraction of users activated per step.
        fraction: f64,
    },
    /// Galam-style majority rule.
    MajorityRule {
        /// Probability a user re-evaluates per step.
        update_prob: f64,
    },
    /// Voter model with a fixed stubborn subset.
    StubbornVoter {
        /// Probability a non-stubborn user copies a neighbor per step.
        copy_prob: f64,
        /// Fraction of users that never change opinion.
        stubborn_fraction: f64,
    },
    /// Thresholded DeGroot/Friedkin–Johnsen projected onto `{−1, 0, +1}`.
    DeGroot {
        /// Weight on the neighborhood average.
        susceptibility: f64,
        /// Minimum |mixed value| for a polar opinion.
        threshold: f64,
    },
    /// Hegselmann–Krause-style bounded-confidence adoption.
    BoundedConfidence {
        /// Maximum opinion-value gap for a neighbor to be heard.
        confidence: i8,
        /// Probability a user re-evaluates per step.
        update_prob: f64,
        /// Minimum |average| for a polar opinion.
        threshold: f64,
    },
}

impl ModelSpec {
    /// The model family this spec builds — matches
    /// [`OpinionDynamics::name`].
    pub fn family(&self) -> &'static str {
        match self {
            ModelSpec::Voting { .. } => "voting",
            ModelSpec::Icc => "icc",
            ModelSpec::Ltc { .. } => "ltc",
            ModelSpec::RandomActivation { .. } => "random-activation",
            ModelSpec::MajorityRule { .. } => "majority-rule",
            ModelSpec::StubbornVoter { .. } => "stubborn-voter",
            ModelSpec::DeGroot { .. } => "degroot-threshold",
            ModelSpec::BoundedConfidence { .. } => "bounded-confidence",
        }
    }

    /// The spec's free parameters as named numbers, in the wire form the
    /// dataset format records (`snd simulate` writes them so `--ground
    /// icc|ltc` can reprice with the *simulated* parameters rather than
    /// the family defaults). Parameters that are `None` are omitted;
    /// [`ModelSpec::Icc`] has no free parameters.
    pub fn params(&self) -> Vec<(&'static str, f64)> {
        match *self {
            ModelSpec::Voting {
                p_nbr,
                p_ext,
                chance_fraction,
            } => {
                let mut out = vec![("p_nbr", p_nbr), ("p_ext", p_ext)];
                if let Some(f) = chance_fraction {
                    out.push(("chance_fraction", f));
                }
                out
            }
            ModelSpec::Icc => Vec::new(),
            ModelSpec::Ltc { threshold } => vec![("threshold", threshold)],
            ModelSpec::RandomActivation { fraction } => vec![("fraction", fraction)],
            ModelSpec::MajorityRule { update_prob } => vec![("update_prob", update_prob)],
            ModelSpec::StubbornVoter {
                copy_prob,
                stubborn_fraction,
            } => vec![
                ("copy_prob", copy_prob),
                ("stubborn_fraction", stubborn_fraction),
            ],
            ModelSpec::DeGroot {
                susceptibility,
                threshold,
            } => vec![("susceptibility", susceptibility), ("threshold", threshold)],
            ModelSpec::BoundedConfidence {
                confidence,
                update_prob,
                threshold,
            } => vec![
                ("confidence", f64::from(confidence)),
                ("update_prob", update_prob),
                ("threshold", threshold),
            ],
        }
    }

    /// Builds the transition kernel for a network of `nodes` users,
    /// validating every parameter.
    pub fn build(
        &self,
        nodes: usize,
        graph: &CsrGraph,
    ) -> Result<Box<dyn OpinionDynamics>, ModelError> {
        let frac_count = |f: f64| ((nodes as f64) * f).round() as usize;
        Ok(match *self {
            ModelSpec::Voting {
                p_nbr,
                p_ext,
                chance_fraction,
            } => {
                let config = VotingConfig::new(p_nbr, p_ext)?;
                Box::new(Voting {
                    config,
                    chances: chance_fraction.map(frac_count),
                })
            }
            ModelSpec::Icc => Box::new(IndependentCascade {
                params: snd_models::IccParams::for_graph(
                    graph,
                    snd_models::icc::EdgeActivation::WeightedCascade,
                    None,
                    1e-6,
                )?,
            }),
            ModelSpec::Ltc { threshold } => Box::new(LinearThreshold {
                params: snd_models::LtcParams::for_graph(
                    graph,
                    snd_models::ltc::EdgeWeights::DegreeNormalized,
                    Some(vec![threshold; nodes]),
                    1e-6,
                )?,
            }),
            ModelSpec::RandomActivation { fraction } => Box::new(RandomActivation {
                count: frac_count(fraction).max(1),
            }),
            ModelSpec::MajorityRule { update_prob } => Box::new(MajorityRule::new(update_prob)?),
            ModelSpec::StubbornVoter {
                copy_prob,
                stubborn_fraction,
            } => Box::new(StubbornVoter::new(copy_prob, stubborn_fraction, 0x5eed)?),
            ModelSpec::DeGroot {
                susceptibility,
                threshold,
            } => Box::new(ThresholdedDeGroot::new(susceptibility, threshold)?),
            ModelSpec::BoundedConfidence {
                confidence,
                update_prob,
                threshold,
            } => Box::new(BoundedConfidence::new(confidence, update_prob, threshold)?),
        })
    }
}

/// Where a scenario's anomalous transitions fall.
#[derive(Clone, Debug)]
pub enum AnomalyPlacement {
    /// The §6.2 placement: at one third and two thirds of the run.
    Thirds,
    /// Explicit transition indices (must be `< steps`).
    Explicit(Vec<usize>),
}

impl AnomalyPlacement {
    /// Resolves to concrete transition indices for a run of `steps`.
    pub fn resolve(&self, steps: usize) -> Result<Vec<bool>, ScenarioError> {
        let mut labels = vec![false; steps];
        match self {
            AnomalyPlacement::Thirds => {
                if steps >= 3 {
                    labels[steps / 3] = true;
                    labels[(2 * steps) / 3] = true;
                } else if steps > 0 {
                    labels[steps / 2] = true;
                }
            }
            AnomalyPlacement::Explicit(ts) => {
                for &t in ts {
                    if t >= steps {
                        return Err(ScenarioError::AnomalousStepOutOfRange { step: t, steps });
                    }
                    labels[t] = true;
                }
            }
        }
        Ok(labels)
    }
}

/// The anomaly half of a scenario: at each anomalous transition the
/// injected model steps instead of the normal one — the §6.2
/// mechanism-shift pattern generalized to any model pair.
#[derive(Clone, Debug)]
pub struct AnomalySpec {
    /// The mechanism substituted at anomalous transitions.
    pub model: ModelSpec,
    /// Which transitions are anomalous.
    pub placement: AnomalyPlacement,
}

/// A named, seeded, reproducible simulation spec. Fields are public so
/// callers (the CLI's `--nodes`/`--steps` overrides, tests) can rescale a
/// registry entry before running it.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Registry key (`snd simulate --scenario NAME`).
    pub name: &'static str,
    /// One-line description for `--list`.
    pub description: &'static str,
    /// Topology.
    pub graph: GraphSpec,
    /// Number of users.
    pub nodes: usize,
    /// Initial adopters as a fraction of `nodes` (split evenly between
    /// camps).
    pub seed_fraction: f64,
    /// Normal transitions simulated (and discarded) before `G_0`.
    pub burn_in: usize,
    /// Number of recorded transitions (`steps + 1` states).
    pub steps: usize,
    /// The normal dynamics.
    pub model: ModelSpec,
    /// Optional anomaly injection.
    pub anomaly: Option<AnomalySpec>,
}

impl Scenario {
    /// Runs the scenario: builds the graph, seeds adopters, burns in, then
    /// records `steps` transitions, substituting the anomaly model at
    /// anomalous transitions. Fully determined by `(self, seed)`.
    pub fn run(&self, seed: u64) -> Result<SyntheticSeries, ScenarioError> {
        let min = self.graph.min_nodes();
        if self.nodes < min {
            return Err(ScenarioError::TooFewNodes {
                nodes: self.nodes,
                min,
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = self.graph.build(self.nodes, &mut rng);
        let n = graph.node_count();
        let model = self.model.build(n, &graph)?;
        let anomaly = self
            .anomaly
            .as_ref()
            .map(|a| -> Result<_, ScenarioError> {
                Ok((a.model.build(n, &graph)?, a.placement.resolve(self.steps)?))
            })
            .transpose()?;

        let adopters = ((n as f64) * self.seed_fraction).round() as usize;
        let mut current = seed_initial_adopters(n, adopters.min(n), &mut rng)?;
        for _ in 0..self.burn_in {
            model.step(&graph, &mut current, &mut rng);
        }

        let labels = match &anomaly {
            Some((_, labels)) => labels.clone(),
            None => vec![false; self.steps],
        };
        let mut states = Vec::with_capacity(self.steps + 1);
        states.push(current);
        for &anomalous in &labels {
            let mut next = states.last().expect("series starts non-empty").clone();
            if anomalous {
                let (injected, _) = anomaly.as_ref().expect("labelled runs carry a model");
                injected.step(&graph, &mut next, &mut rng);
            } else {
                model.step(&graph, &mut next, &mut rng);
            }
            states.push(next);
        }
        Ok(SyntheticSeries {
            graph,
            states,
            labels,
        })
    }
}

/// The built-in scenarios: at least one per model family.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "voting",
            description: "baseline probabilistic voting on a scale-free network (§6.1)",
            graph: GraphSpec::ScaleFree {
                exponent: -2.3,
                k_min: 3,
            },
            nodes: 2000,
            seed_fraction: 0.15,
            burn_in: 4,
            steps: 40,
            model: ModelSpec::Voting {
                p_nbr: 0.12,
                p_ext: 0.01,
                chance_fraction: Some(0.12),
            },
            anomaly: None,
        },
        Scenario {
            name: "voting-mech-shift",
            description: "probabilistic voting with §6.2 mechanism-shift anomalies at thirds",
            graph: GraphSpec::ScaleFree {
                exponent: -2.3,
                k_min: 3,
            },
            nodes: 2000,
            seed_fraction: 0.15,
            burn_in: 4,
            steps: 40,
            model: ModelSpec::Voting {
                p_nbr: 0.12,
                p_ext: 0.01,
                chance_fraction: Some(0.12),
            },
            anomaly: Some(AnomalySpec {
                model: ModelSpec::Voting {
                    p_nbr: 0.08,
                    p_ext: 0.05,
                    chance_fraction: Some(0.12),
                },
                placement: AnomalyPlacement::Thirds,
            }),
        },
        Scenario {
            name: "icc-cascade",
            description: "ICC cascade with random-activation anomalies (§6.4 pattern)",
            graph: GraphSpec::BarabasiAlbert { m: 3 },
            nodes: 2000,
            seed_fraction: 0.05,
            burn_in: 1,
            steps: 24,
            model: ModelSpec::Icc,
            anomaly: Some(AnomalySpec {
                model: ModelSpec::RandomActivation { fraction: 0.02 },
                placement: AnomalyPlacement::Thirds,
            }),
        },
        Scenario {
            name: "ltc-cascade",
            description: "LTC threshold cascade with random-activation anomalies",
            graph: GraphSpec::BarabasiAlbert { m: 3 },
            nodes: 2000,
            seed_fraction: 0.08,
            burn_in: 1,
            steps: 24,
            model: ModelSpec::Ltc { threshold: 0.3 },
            anomaly: Some(AnomalySpec {
                model: ModelSpec::RandomActivation { fraction: 0.02 },
                placement: AnomalyPlacement::Thirds,
            }),
        },
        Scenario {
            name: "random-activation",
            description: "structure-oblivious null model: random activations only",
            graph: GraphSpec::ScaleFree {
                exponent: -2.3,
                k_min: 3,
            },
            nodes: 2000,
            seed_fraction: 0.05,
            burn_in: 0,
            steps: 24,
            model: ModelSpec::RandomActivation { fraction: 0.01 },
            anomaly: None,
        },
        Scenario {
            name: "majority-consensus",
            description: "Galam majority rule on two bridged communities, random-burst anomalies",
            graph: GraphSpec::TwoClusterBridge {
                intra_p: 0.05,
                bridges: 6,
            },
            nodes: 2000,
            seed_fraction: 0.3,
            burn_in: 1,
            steps: 24,
            model: ModelSpec::MajorityRule { update_prob: 0.25 },
            anomaly: Some(AnomalySpec {
                model: ModelSpec::RandomActivation { fraction: 0.03 },
                placement: AnomalyPlacement::Thirds,
            }),
        },
        Scenario {
            name: "stubborn-voter",
            description: "voter model with 10% curmudgeons sustaining disagreement",
            graph: GraphSpec::BarabasiAlbert { m: 3 },
            nodes: 2000,
            seed_fraction: 0.4,
            burn_in: 2,
            steps: 24,
            model: ModelSpec::StubbornVoter {
                copy_prob: 0.3,
                stubborn_fraction: 0.1,
            },
            anomaly: Some(AnomalySpec {
                model: ModelSpec::RandomActivation { fraction: 0.03 },
                placement: AnomalyPlacement::Thirds,
            }),
        },
        Scenario {
            name: "degroot-threshold",
            description: "thresholded Friedkin–Johnsen averaging with random-burst anomalies",
            graph: GraphSpec::BarabasiAlbert { m: 4 },
            nodes: 2000,
            seed_fraction: 0.35,
            burn_in: 1,
            steps: 24,
            model: ModelSpec::DeGroot {
                susceptibility: 0.55,
                threshold: 0.25,
            },
            anomaly: Some(AnomalySpec {
                model: ModelSpec::RandomActivation { fraction: 0.03 },
                placement: AnomalyPlacement::Thirds,
            }),
        },
        Scenario {
            name: "bounded-confidence",
            description: "Hegselmann–Krause echo chambers on two bridged communities",
            graph: GraphSpec::TwoClusterBridge {
                intra_p: 0.05,
                bridges: 4,
            },
            nodes: 2000,
            seed_fraction: 0.4,
            burn_in: 1,
            steps: 24,
            model: ModelSpec::BoundedConfidence {
                confidence: 1,
                update_prob: 0.3,
                threshold: 0.25,
            },
            anomaly: Some(AnomalySpec {
                model: ModelSpec::RandomActivation { fraction: 0.03 },
                placement: AnomalyPlacement::Thirds,
            }),
        },
    ]
}

/// Looks up a registry scenario by name.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_cover_every_family() {
        let reg = registry();
        let mut names: Vec<_> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate scenario names");
        let mut families: Vec<_> = reg.iter().map(|s| s.model.family()).collect();
        families.sort_unstable();
        families.dedup();
        assert_eq!(
            families.len(),
            8,
            "one scenario per model family: {families:?}"
        );
    }

    #[test]
    fn model_params_are_finite_named_numbers() {
        // Every registry model serializes to finite named parameters, and
        // the two repricable families expose exactly what the ground-cost
        // configs need: LTC its threshold, ICC nothing (no free params).
        for sc in registry() {
            for (name, value) in sc.model.params() {
                assert!(
                    value.is_finite(),
                    "{}: param {name} must be finite, got {value}",
                    sc.name
                );
                assert!(!name.is_empty());
            }
        }
        let ltc = ModelSpec::Ltc { threshold: 0.35 };
        assert_eq!(ltc.params(), vec![("threshold", 0.35)]);
        assert!(ModelSpec::Icc.params().is_empty());
    }

    #[test]
    fn every_scenario_runs_and_is_deterministic_per_seed() {
        for mut sc in registry() {
            sc.nodes = 240;
            sc.steps = 6;
            let a = sc.run(3).unwrap_or_else(|e| panic!("{}: {e}", sc.name));
            let b = sc.run(3).unwrap();
            assert_eq!(a.states, b.states, "{} not deterministic", sc.name);
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.states.len(), 7, "{}", sc.name);
            assert_eq!(a.labels.len(), 6, "{}", sc.name);
            assert_eq!(a.graph.node_count(), a.states[0].len());
            let c = sc.run(4).unwrap();
            assert_ne!(a.states, c.states, "{} ignores the seed", sc.name);
        }
    }

    #[test]
    fn labelled_scenarios_place_anomalies_at_thirds() {
        let mut sc = find_scenario("voting-mech-shift").expect("registered");
        sc.nodes = 200;
        sc.steps = 12;
        let series = sc.run(1).unwrap();
        assert!(series.labels[4] && series.labels[8]);
        assert_eq!(series.labels.iter().filter(|&&l| l).count(), 2);
    }

    #[test]
    fn explicit_placement_validates_range() {
        let mut sc = find_scenario("icc-cascade").expect("registered");
        sc.nodes = 100;
        sc.steps = 5;
        sc.anomaly = Some(AnomalySpec {
            model: ModelSpec::RandomActivation { fraction: 0.1 },
            placement: AnomalyPlacement::Explicit(vec![7]),
        });
        let err = sc.run(1).expect_err("step 7 of 5 must be rejected");
        assert_eq!(
            err,
            ScenarioError::AnomalousStepOutOfRange { step: 7, steps: 5 }
        );
    }

    #[test]
    fn bad_model_parameters_surface_as_scenario_errors() {
        let mut sc = find_scenario("voting").expect("registered");
        sc.nodes = 100;
        sc.model = ModelSpec::Voting {
            p_nbr: 0.9,
            p_ext: 0.9,
            chance_fraction: None,
        };
        assert!(matches!(sc.run(1), Err(ScenarioError::Model(_))));
    }

    #[test]
    fn unknown_scenario_lookup_is_none() {
        assert!(find_scenario("no-such-scenario").is_none());
        assert!(find_scenario("voting").is_some());
    }

    #[test]
    fn tiny_node_counts_error_instead_of_panicking() {
        // Below every generator's viable floor the run must surface a
        // structured error (the CLI exposes --nodes directly).
        for mut sc in registry() {
            let min = sc.graph.min_nodes();
            for nodes in 0..min {
                sc.nodes = nodes;
                sc.steps = 2;
                assert!(
                    matches!(sc.run(1), Err(ScenarioError::TooFewNodes { .. })),
                    "{} at {nodes} nodes must error structurally",
                    sc.name
                );
            }
            // And the floor itself runs.
            sc.nodes = min;
            sc.steps = 2;
            sc.run(1)
                .unwrap_or_else(|e| panic!("{} at its floor {min}: {e}", sc.name));
        }
    }
}
