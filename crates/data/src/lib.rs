//! Workload generators for the SND experiments.
//!
//! * [`scenario`] — **the scenario registry**: named, seeded simulation
//!   specs composing a graph generator, an initial seeding, any
//!   [`OpinionDynamics`](snd_models::OpinionDynamics) model, and an
//!   anomaly-injection schedule into a reproducible labelled series. The
//!   engine behind `snd simulate`.
//! * [`synthetic`] — scale-free networks with a probabilistic-voting
//!   activation process and injected mechanism anomalies (§6.1–§6.2): the
//!   data behind Figs. 7, 8 and Table 1's synthetic column.
//! * [`twitter`] — the simulated stand-in for the paper's Twitter dataset
//!   (10k users, ~130 edges each, 13 quarterly states, May'08–Aug'11) with
//!   a timeline of consensus and polarized political events; see DESIGN.md
//!   for the substitution rationale. Data behind Fig. 9 and Table 1's
//!   real-world column.

pub mod scenario;
pub mod synthetic;
pub mod twitter;

pub use scenario::{
    find_scenario, registry, AnomalyPlacement, AnomalySpec, GraphSpec, ModelSpec, Scenario,
    ScenarioError,
};
pub use synthetic::{generate_series, SyntheticSeries, SyntheticSeriesConfig};
pub use twitter::{simulate_twitter, Event, EventKind, TwitterSim, TwitterSimConfig};
