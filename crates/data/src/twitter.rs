//! Simulated Twitter dataset — the stand-in for the paper's real-world data
//! (see DESIGN.md, substitution 1).
//!
//! The paper's dataset: 10k users with ≈130 follower edges each, quarterly
//! opinion snapshots on a political topic from May 2008 to August 2011 (13
//! states), with ground truth from Google Trends plus a log of political
//! events. This module reproduces what that data *exercises*:
//!
//! * a scale-free follower graph of the same scale;
//! * baseline quarters: neighbor-driven activation plus churn (users who
//!   stop tweeting in a quarter become neutral);
//! * **consensus events** (election, inauguration, bin-Laden): an
//!   activation surge flowing through the usual neighbor-voting mechanism —
//!   every distance measure should react;
//! * **polarized events** (stimulus bill, "Obama-Care", tax plan): two
//!   structural communities activate *against* each other and some users
//!   flip polarity — coordinate-wise measures see ordinary volume, while a
//!   propagation-aware measure sees expensive, structure-breaking flows.
//!
//! Transitions into polarized quarters are the labelled anomalies.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_graph::{generators, label_propagation, CsrGraph, NodeId};
use snd_models::dynamics::{seed_initial_adopters, voting_step_sampled, VotingConfig};
use snd_models::{NetworkState, Opinion};

/// Kind of injected event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// Broad, non-polarizing activation surge (e.g. an election night):
    /// `surge` scales the quarter's activation chances.
    Consensus {
        /// Multiplier on the baseline activation chances.
        surge: f64,
    },
    /// Two communities activate against each other; `intensity` is the
    /// fraction of each community's members that picks up the camp opinion,
    /// and a matching share of active members flips polarity.
    Polarized {
        /// Fraction of community members activating/flipping.
        intensity: f64,
    },
}

/// A named event pinned to a quarter.
#[derive(Clone, Debug)]
pub struct Event {
    /// Quarter index (state index in `1..quarters`).
    pub quarter: usize,
    /// Event kind and magnitude.
    pub kind: EventKind,
    /// Display name for experiment output.
    pub name: &'static str,
}

/// Configuration for [`simulate_twitter`].
#[derive(Clone, Debug)]
pub struct TwitterSimConfig {
    /// Number of users (paper: 10k).
    pub users: usize,
    /// Average number of follower edges per user (paper: ≈130).
    pub avg_degree: usize,
    /// Number of quarterly states (paper: 13, May'08–Aug'11).
    pub quarters: usize,
    /// Baseline activation parameters.
    pub baseline: VotingConfig,
    /// Fraction of users offered an activation chance per quarter.
    pub chance_fraction: f64,
    /// Probability an active user goes quiet (neutral) next quarter.
    pub churn: f64,
    /// Event schedule; quarters must be in `1..quarters`.
    pub events: Vec<Event>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwitterSimConfig {
    fn default() -> Self {
        TwitterSimConfig {
            users: 10_000,
            avg_degree: 130,
            quarters: 13,
            baseline: VotingConfig::new(0.10, 0.01).expect("valid voting parameters"),
            chance_fraction: 0.06,
            churn: 0.08,
            events: default_timeline(),
            seed: 2008,
        }
    }
}

/// The default event timeline, mirroring the Fig. 9 annotations
/// (quarters run May'08 … Aug'11).
pub fn default_timeline() -> Vec<Event> {
    vec![
        Event {
            quarter: 1,
            kind: EventKind::Consensus { surge: 3.0 },
            name: "election",
        },
        Event {
            quarter: 2,
            kind: EventKind::Consensus { surge: 1.8 },
            name: "inauguration",
        },
        Event {
            quarter: 4,
            kind: EventKind::Polarized { intensity: 0.25 },
            name: "economic-stimulus-bill",
        },
        Event {
            quarter: 6,
            kind: EventKind::Consensus { surge: 1.5 },
            name: "nobel-prize",
        },
        Event {
            quarter: 8,
            kind: EventKind::Polarized { intensity: 0.3 },
            name: "obama-care",
        },
        Event {
            quarter: 10,
            kind: EventKind::Polarized { intensity: 0.2 },
            name: "tax-plan",
        },
        Event {
            quarter: 12,
            kind: EventKind::Consensus { surge: 3.0 },
            name: "bin-laden",
        },
    ]
}

/// A simulated Twitter dataset.
#[derive(Clone, Debug)]
pub struct TwitterSim {
    /// Follower graph.
    pub graph: CsrGraph,
    /// Quarterly states (`quarters` of them).
    pub states: Vec<NetworkState>,
    /// Event schedule used.
    pub events: Vec<Event>,
    /// `labels[t]` marks transition `G_t → G_{t+1}` as anomalous
    /// (= leads into a polarized quarter).
    pub labels: Vec<bool>,
    /// The two opposing communities used by polarized events.
    pub camps: (Vec<NodeId>, Vec<NodeId>),
}

/// Runs the simulation.
pub fn simulate_twitter(config: &TwitterSimConfig) -> TwitterSim {
    assert!(config.quarters >= 2);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    // Degree span chosen so the mean lands near `avg_degree` for the
    // default exponent.
    let k_max = (config.avg_degree * 14).min(config.users - 1);
    let graph = generators::scale_free_configuration(
        config.users,
        -2.0,
        config.avg_degree / 3,
        k_max,
        &mut rng,
    );

    // The two largest structural communities become the opposing camps;
    // when label propagation collapses the graph into one giant community
    // (common on dense scale-free graphs), fall back to a balanced BFS
    // bisection, which still yields structurally coherent halves.
    let communities = label_propagation(&graph, 12, &mut rng);
    let mut by_size: Vec<usize> = (0..communities.cluster_count()).collect();
    by_size.sort_by_key(|&c| std::cmp::Reverse(communities.members(c as u32).len()));
    let second_size = by_size
        .get(1)
        .map_or(0, |&c| communities.members(c as u32).len());
    let (camp_pos, camp_neg): (Vec<NodeId>, Vec<NodeId>) = if second_size >= config.users / 20 {
        (
            communities.members(by_size[0] as u32).to_vec(),
            communities.members(by_size[1] as u32).to_vec(),
        )
    } else {
        let halves = snd_graph::bfs_partition(&graph, 2);
        (halves.members(0).to_vec(), halves.members(1).to_vec())
    };

    let chances = ((config.users as f64) * config.chance_fraction).round() as usize;
    let mut states = Vec::with_capacity(config.quarters);
    let mut labels = vec![false; config.quarters - 1];
    states.push(
        seed_initial_adopters(config.users, config.users / 20, &mut rng)
            .expect("seed count is a twentieth of the population"),
    );

    for q in 1..config.quarters {
        let mut state = states.last().unwrap().clone();
        // Churn: some active users tweet nothing this quarter.
        for u in 0..config.users as NodeId {
            if state.opinion(u).is_active() && rng.gen_bool(config.churn) {
                state.set(u, Opinion::Neutral);
            }
        }
        let event = config.events.iter().find(|e| e.quarter == q);
        match event.map(|e| e.kind) {
            Some(EventKind::Consensus { surge }) => {
                let boosted = (chances as f64 * surge).round() as usize;
                state = voting_step_sampled(&graph, &state, &config.baseline, boosted, &mut rng);
            }
            Some(EventKind::Polarized { intensity }) => {
                state = voting_step_sampled(&graph, &state, &config.baseline, chances, &mut rng);
                apply_polarized_event(&mut state, &camp_pos, &camp_neg, intensity, &mut rng);
                labels[q - 1] = true;
            }
            None => {
                state = voting_step_sampled(&graph, &state, &config.baseline, chances, &mut rng);
            }
        }
        states.push(state);
    }

    TwitterSim {
        graph,
        states,
        events: config.events.clone(),
        labels,
        camps: (camp_pos, camp_neg),
    }
}

/// Polarized event: members of each camp pick up the camp's opinion —
/// including actives of the *other* polarity flipping — with probability
/// `intensity`, independent of their neighborhoods.
fn apply_polarized_event<R: Rng>(
    state: &mut NetworkState,
    camp_pos: &[NodeId],
    camp_neg: &[NodeId],
    intensity: f64,
    rng: &mut R,
) {
    for &u in camp_pos {
        if rng.gen_bool(intensity) {
            state.set(u, Opinion::Positive);
        }
    }
    for &u in camp_neg {
        if rng.gen_bool(intensity) {
            state.set(u, Opinion::Negative);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TwitterSimConfig {
        TwitterSimConfig {
            users: 800,
            avg_degree: 20,
            quarters: 8,
            events: vec![
                Event {
                    quarter: 2,
                    kind: EventKind::Consensus { surge: 3.0 },
                    name: "consensus",
                },
                Event {
                    quarter: 5,
                    kind: EventKind::Polarized { intensity: 0.3 },
                    name: "polarized",
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn shape_and_labels() {
        let sim = simulate_twitter(&small_config());
        assert_eq!(sim.states.len(), 8);
        assert_eq!(sim.labels.len(), 7);
        assert!(sim.labels[4], "transition into quarter 5 is anomalous");
        assert_eq!(sim.labels.iter().filter(|&&l| l).count(), 1);
    }

    #[test]
    fn consensus_quarter_has_activation_surge() {
        let sim = simulate_twitter(&small_config());
        let growth: Vec<i64> = sim
            .states
            .windows(2)
            .map(|w| w[1].active_count() as i64 - w[0].active_count() as i64)
            .collect();
        // The consensus quarter (transition 1) outgrows the baseline
        // quarter right after it (transition 2).
        assert!(
            growth[1] > growth[2],
            "consensus surge {} vs baseline {}",
            growth[1],
            growth[2]
        );
    }

    #[test]
    fn polarized_quarter_flips_opinions() {
        let sim = simulate_twitter(&small_config());
        // Count polarity flips (active -> opposite) per transition.
        let flips: Vec<usize> = sim
            .states
            .windows(2)
            .map(|w| {
                (0..w[0].len() as NodeId)
                    .filter(|&u| {
                        let (a, b) = (w[0].opinion(u), w[1].opinion(u));
                        a.is_active() && b.is_active() && a != b
                    })
                    .count()
            })
            .collect();
        let polarized_flips = flips[4];
        let baseline_max = flips
            .iter()
            .enumerate()
            .filter(|&(t, _)| t != 4)
            .map(|(_, &f)| f)
            .max()
            .unwrap();
        assert!(
            polarized_flips > baseline_max,
            "polarized {polarized_flips} vs baseline max {baseline_max}"
        );
    }

    #[test]
    fn camps_are_disjoint() {
        let sim = simulate_twitter(&small_config());
        let (pos, neg) = &sim.camps;
        let pos_set: std::collections::HashSet<_> = pos.iter().collect();
        assert!(neg.iter().all(|u| !pos_set.contains(u)));
        assert!(!pos.is_empty() && !neg.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_twitter(&small_config());
        let b = simulate_twitter(&small_config());
        assert_eq!(a.states, b.states);
    }
}
