//! Synthetic network-state series with injected mechanism anomalies.
//!
//! Normal steps use `(p_nbr, p_ext)`; anomalous steps shift probability
//! mass from neighbor-driven adoption to external (random) adoption while
//! preserving the sum, so the *number* of new activations is statistically
//! unchanged and only the activation *mechanism* differs — the anomalies
//! §6.2 designs to be invisible to coordinate-wise distance measures.
//!
//! Because a user whose sampled neighborhood has no active member stays
//! neutral, the raw activation rate is `p_nbr·pf + p_ext` with `pf` the
//! fraction of neutral users having an active in-neighbor. The generator
//! therefore *calibrates* the number of activation chances each anomalous
//! step so the expected activation volume matches a normal step exactly —
//! keeping the summary statistic (new-activation count) uninformative at
//! any density.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd_graph::{generators, CsrGraph};
use snd_models::dynamics::{seed_initial_adopters, VotingConfig};
use snd_models::process::Voting;
use snd_models::{NetworkState, OpinionDynamics};

/// Configuration for [`generate_series`].
#[derive(Clone, Debug)]
pub struct SyntheticSeriesConfig {
    /// Number of users.
    pub nodes: usize,
    /// Scale-free exponent (negative; the paper uses −2.9 … −2.1).
    pub exponent: f64,
    /// Initial adopters (split evenly between the two opinions).
    pub initial_adopters: usize,
    /// Number of transitions to generate (`steps + 1` states).
    pub steps: usize,
    /// Normal-step activation parameters.
    pub normal: VotingConfig,
    /// Anomalous-step activation parameters (same sum, different split).
    pub anomalous: VotingConfig,
    /// Transitions generated with the anomalous parameters (indices into
    /// `0..steps`).
    pub anomalous_steps: Vec<usize>,
    /// Fraction of users offered an activation chance per step; keeps long
    /// series from saturating.
    pub chance_fraction: f64,
    /// Normal steps simulated (and discarded) before recording `G_0`,
    /// removing series-start transients.
    pub burn_in: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticSeriesConfig {
    fn default() -> Self {
        SyntheticSeriesConfig {
            nodes: 2000,
            exponent: -2.3,
            initial_adopters: 300,
            steps: 40,
            normal: VotingConfig::new(0.12, 0.01).expect("valid voting parameters"),
            anomalous: VotingConfig::new(0.08, 0.05).expect("valid voting parameters"),
            anomalous_steps: vec![10, 25],
            chance_fraction: 0.12,
            burn_in: 4,
            seed: 7,
        }
    }
}

/// A generated series: graph, `steps + 1` states, and per-transition
/// anomaly labels.
#[derive(Clone, Debug)]
pub struct SyntheticSeries {
    /// The network.
    pub graph: CsrGraph,
    /// States `G_0 … G_steps`.
    pub states: Vec<NetworkState>,
    /// `labels[t]` marks transition `G_t → G_{t+1}` as anomalous.
    pub labels: Vec<bool>,
}

/// Fraction of neutral users with at least one active in-neighbor — the
/// quantity that couples the neighbor-vote branch to the activation volume.
fn active_neighbor_fraction(graph: &CsrGraph, state: &NetworkState) -> f64 {
    let mut neutral = 0usize;
    let mut with_active = 0usize;
    for v in graph.nodes() {
        if state.opinion(v).is_active() {
            continue;
        }
        neutral += 1;
        if graph
            .in_neighbors(v)
            .iter()
            .any(|&u| state.opinion(u).is_active())
        {
            with_active += 1;
        }
    }
    if neutral == 0 {
        1.0
    } else {
        with_active as f64 / neutral as f64
    }
}

/// Generates a synthetic series per the configuration.
///
/// Steps run through the trait-based [`Voting`] kernel (bit-identical to
/// the pre-trait `voting_step_sampled` loop for a fixed seed); the
/// volume-calibration logic between steps is what makes this generator the
/// §6.2-faithful one — the generic path for arbitrary models is the
/// scenario registry in [`crate::scenario`].
pub fn generate_series(config: &SyntheticSeriesConfig) -> SyntheticSeries {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let k_max = (config.nodes / 50).clamp(8, 1000);
    let graph =
        generators::scale_free_configuration(config.nodes, config.exponent, 3, k_max, &mut rng);
    let chances = ((config.nodes as f64) * config.chance_fraction).round() as usize;

    let mut labels = vec![false; config.steps];
    for &t in &config.anomalous_steps {
        assert!(t < config.steps, "anomalous step {t} out of range");
        labels[t] = true;
    }
    let normal = Voting::sampled(config.normal, chances);
    let mut current = seed_initial_adopters(
        config.nodes,
        config.initial_adopters.min(config.nodes),
        &mut rng,
    )
    .expect("adopter count clamped to the population");
    for _ in 0..config.burn_in {
        normal.step(&graph, &mut current, &mut rng);
    }

    let mut states = Vec::with_capacity(config.steps + 1);
    states.push(current);
    for &anomalous in &labels {
        let mut next = states.last().unwrap().clone();
        if anomalous {
            // Volume calibration: match the expected activation count of a
            // normal step at the current density.
            let pf = active_neighbor_fraction(&graph, &next);
            let normal_rate = config.normal.p_nbr * pf + config.normal.p_ext;
            let anomalous_rate = config.anomalous.p_nbr * pf + config.anomalous.p_ext;
            let calibrated = if anomalous_rate > 0.0 {
                ((chances as f64) * normal_rate / anomalous_rate).round() as usize
            } else {
                chances
            };
            Voting::sampled(config.anomalous, calibrated).step(&graph, &mut next, &mut rng);
        } else {
            normal.step(&graph, &mut next, &mut rng);
        }
        states.push(next);
    }
    SyntheticSeries {
        graph,
        states,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_has_expected_shape() {
        let config = SyntheticSeriesConfig {
            nodes: 300,
            steps: 10,
            initial_adopters: 20,
            anomalous_steps: vec![4],
            ..Default::default()
        };
        let series = generate_series(&config);
        assert_eq!(series.states.len(), 11);
        assert_eq!(series.labels.len(), 10);
        assert!(series.labels[4]);
        assert_eq!(series.labels.iter().filter(|&&l| l).count(), 1);
        assert_eq!(series.graph.node_count(), 300);
    }

    #[test]
    fn activation_grows_monotonically() {
        let config = SyntheticSeriesConfig {
            nodes: 400,
            steps: 8,
            initial_adopters: 30,
            anomalous_steps: vec![],
            ..Default::default()
        };
        let series = generate_series(&config);
        for w in series.states.windows(2) {
            assert!(w[1].active_count() >= w[0].active_count());
        }
        assert!(series.states.last().unwrap().active_count() > 30);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = SyntheticSeriesConfig {
            nodes: 200,
            steps: 5,
            anomalous_steps: vec![2],
            ..Default::default()
        };
        let a = generate_series(&config);
        let b = generate_series(&config);
        assert_eq!(a.states, b.states);
        let c = generate_series(&SyntheticSeriesConfig {
            seed: 8,
            ..config.clone()
        });
        assert_ne!(a.states, c.states);
    }

    #[test]
    fn anomalous_steps_preserve_activation_volume() {
        // Mechanism anomalies must not be detectable from counts alone.
        // Volume preservation needs a dense-enough active neighborhood;
        // seed a third of the network.
        let base = SyntheticSeriesConfig {
            nodes: 3000,
            steps: 2,
            initial_adopters: 1000,
            anomalous_steps: vec![],
            seed: 42,
            ..Default::default()
        };
        let normal = generate_series(&base);
        let anomalous = generate_series(&SyntheticSeriesConfig {
            anomalous_steps: vec![0, 1],
            ..base
        });
        let growth = |s: &SyntheticSeries| {
            s.states.last().unwrap().active_count() - s.states[0].active_count()
        };
        let (gn, ga) = (growth(&normal) as f64, growth(&anomalous) as f64);
        let ratio = gn / ga;
        assert!((0.75..1.33).contains(&ratio), "growth ratio {ratio}");
    }
}
