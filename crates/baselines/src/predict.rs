//! Non-distance-based opinion predictors (§6.3's `nhood-voting` and
//! `community-lp`).

use rand::Rng;
use snd_graph::{label_propagation, Clustering, CsrGraph, NodeId};
use snd_models::dynamics::random_opinion;
use snd_models::{NetworkState, Opinion};

/// Predicts each target user's opinion by probabilistic voting over her
/// active in-neighbors in `known` (targets should be neutral in `known`);
/// falls back to a uniformly random opinion when no in-neighbor is active.
pub fn nhood_voting<R: Rng>(
    g: &CsrGraph,
    known: &NetworkState,
    targets: &[NodeId],
    rng: &mut R,
) -> Vec<Opinion> {
    targets
        .iter()
        .map(|&t| {
            snd_models::dynamics::neighborhood_vote(g, known, t, rng)
                .unwrap_or_else(|| random_opinion(rng))
        })
        .collect()
}

/// Community detection for [`community_lp`]: label propagation over the
/// network structure, falling back to a balanced BFS partition when label
/// propagation collapses the graph into one giant community (common on
/// dense scale-free graphs, where a single-community clustering makes the
/// majority vote uninformative). Exposed so experiments can reuse one
/// clustering for many prediction rounds.
pub fn detect_communities<R: Rng>(g: &CsrGraph, rng: &mut R) -> Clustering {
    let lp = label_propagation(g, 20, rng);
    let n = g.node_count();
    let largest = lp.clusters.iter().map(Vec::len).max().unwrap_or(0);
    if n > 0 && largest * 10 >= n * 9 {
        snd_graph::bfs_partition(g, (n / 64).clamp(2, 64))
    } else {
        lp
    }
}

/// Predicts each target's opinion as the majority opinion of the known
/// active users in the target's (structural) community, breaking ties and
/// empty communities randomly — the community-label-propagation method of
/// Conover et al. adapted to quantified opinions.
pub fn community_lp<R: Rng>(
    communities: &Clustering,
    known: &NetworkState,
    targets: &[NodeId],
    rng: &mut R,
) -> Vec<Opinion> {
    // Majority per community, counted once.
    let nc = communities.cluster_count();
    let mut pos = vec![0u32; nc];
    let mut neg = vec![0u32; nc];
    for (u, &op) in known.opinions().iter().enumerate() {
        let c = communities.labels[u] as usize;
        match op {
            Opinion::Positive => pos[c] += 1,
            Opinion::Negative => neg[c] += 1,
            Opinion::Neutral => {}
        }
    }
    targets
        .iter()
        .map(|&t| {
            let c = communities.cluster_of(t) as usize;
            match pos[c].cmp(&neg[c]) {
                std::cmp::Ordering::Greater => Opinion::Positive,
                std::cmp::Ordering::Less => Opinion::Negative,
                std::cmp::Ordering::Equal => random_opinion(rng),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use snd_graph::generators::two_cluster_bridge;
    use snd_graph::CsrGraph;

    #[test]
    fn nhood_voting_follows_unanimous_neighbors() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = CsrGraph::from_edges(4, &[(0, 3), (1, 3), (2, 3)]);
        let known = NetworkState::from_values(&[-1, -1, -1, 0]);
        let pred = nhood_voting(&g, &known, &[3], &mut rng);
        assert_eq!(pred, vec![Opinion::Negative]);
    }

    #[test]
    fn community_lp_uses_community_majority() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = two_cluster_bridge(25, 0.4, 2, &mut rng);
        let communities = detect_communities(&g, &mut rng);
        // Left community mostly +, right mostly −; targets 0 and 30.
        let mut known = NetworkState::new_neutral(50);
        for v in 1..20 {
            known.set(v, Opinion::Positive);
        }
        for v in 31..45 {
            known.set(v, Opinion::Negative);
        }
        let pred = community_lp(&communities, &known, &[0, 30], &mut rng);
        assert_eq!(pred[0], Opinion::Positive);
        assert_eq!(pred[1], Opinion::Negative);
    }

    #[test]
    fn empty_evidence_falls_back_to_random_but_valid() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let known = NetworkState::new_neutral(3);
        let pred = nhood_voting(&g, &known, &[1, 2], &mut rng);
        assert_eq!(pred.len(), 2);
        assert!(pred.iter().all(|o| o.is_active()));
        let communities = detect_communities(&g, &mut rng);
        let pred = community_lp(&communities, &known, &[0], &mut rng);
        assert!(pred[0].is_active());
    }
}
