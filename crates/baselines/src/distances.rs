//! Competitor distance measures over network states.

use snd_graph::{laplacian_quadratic_form, CsrGraph};
use snd_models::NetworkState;

/// A distance measure between two network states over a fixed user set.
pub trait StateDistance {
    /// Distance between two states (non-negative; 0 for identical states).
    fn distance(&self, a: &NetworkState, b: &NetworkState) -> f64;

    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Symmetric all-pairs matrix over a snapshot set (row-major nested
    /// rows, zero diagonal). The default evaluates each pair
    /// independently; measures with shareable per-state work override this
    /// with a batch path (SND computes geometry once per state and shares
    /// SSSP rows across the whole matrix).
    fn pairwise(&self, states: &[NetworkState]) -> Vec<Vec<f64>> {
        let k = states.len();
        let mut m = vec![vec![0.0; k]; k];
        for i in 0..k {
            for j in (i + 1)..k {
                let d = self.distance(&states[i], &states[j]);
                m[i][j] = d;
                m[j][i] = d;
            }
        }
        m
    }

    /// Adjacent-transition distances `d(G_t, G_{t+1})` over a series
    /// (`states.len() − 1` values). Measures with shareable per-state work
    /// override this (SND shares each state's geometry between the two
    /// transitions it participates in).
    fn series(&self, states: &[NetworkState]) -> Vec<f64> {
        states
            .windows(2)
            .map(|w| self.distance(&w[0], &w[1]))
            .collect()
    }
}

/// Hamming distance: the number of users whose opinion differs.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hamming;

impl StateDistance for Hamming {
    fn distance(&self, a: &NetworkState, b: &NetworkState) -> f64 {
        a.diff_count(b) as f64
    }

    fn name(&self) -> &'static str {
        "hamming"
    }
}

/// ℓ1 distance on the ±1/0 opinion encoding.
#[derive(Clone, Copy, Debug, Default)]
pub struct L1;

impl StateDistance for L1 {
    fn distance(&self, a: &NetworkState, b: &NetworkState) -> f64 {
        assert_eq!(a.len(), b.len(), "state length mismatch");
        a.opinions()
            .iter()
            .zip(b.opinions())
            .map(|(&x, &y)| (x.value() - y.value()).unsigned_abs() as f64)
            .sum()
    }

    fn name(&self) -> &'static str {
        "l1"
    }
}

/// Quadratic-form distance `sqrt((P−Q)ᵀ L (P−Q))` with the graph Laplacian.
#[derive(Clone, Copy, Debug)]
pub struct QuadForm<'g> {
    graph: &'g CsrGraph,
}

impl<'g> QuadForm<'g> {
    /// Creates the measure over the given network.
    pub fn new(graph: &'g CsrGraph) -> Self {
        QuadForm { graph }
    }
}

impl StateDistance for QuadForm<'_> {
    fn distance(&self, a: &NetworkState, b: &NetworkState) -> f64 {
        assert_eq!(a.len(), b.len(), "state length mismatch");
        assert_eq!(a.len(), self.graph.node_count(), "state/graph mismatch");
        let diff: Vec<f64> = a
            .opinions()
            .iter()
            .zip(b.opinions())
            .map(|(&x, &y)| (x.value() - y.value()) as f64)
            .collect();
        laplacian_quadratic_form(self.graph, &diff).max(0.0).sqrt()
    }

    fn name(&self) -> &'static str {
        "quad-form"
    }
}

/// Walk distance: compares per-user "contention" vectors, where a user's
/// contention is how far her opinion sits from the average opinion of her
/// *active* in-neighbors (0 when she has none).
#[derive(Clone, Copy, Debug)]
pub struct WalkDist<'g> {
    graph: &'g CsrGraph,
}

impl<'g> WalkDist<'g> {
    /// Creates the measure over the given network.
    pub fn new(graph: &'g CsrGraph) -> Self {
        WalkDist { graph }
    }

    /// The contention vector `cnt(P)` of a state.
    pub fn contention(&self, state: &NetworkState) -> Vec<f64> {
        let g = self.graph;
        (0..g.node_count() as u32)
            .map(|v| {
                let mut sum = 0i64;
                let mut active = 0i64;
                for &u in g.in_neighbors(v) {
                    let o = state.opinion(u);
                    if o.is_active() {
                        sum += o.value() as i64;
                        active += 1;
                    }
                }
                if active == 0 {
                    0.0
                } else {
                    (state.opinion(v).value() as f64 - sum as f64 / active as f64).abs()
                }
            })
            .collect()
    }
}

impl StateDistance for WalkDist<'_> {
    fn distance(&self, a: &NetworkState, b: &NetworkState) -> f64 {
        assert_eq!(a.len(), b.len(), "state length mismatch");
        assert_eq!(a.len(), self.graph.node_count(), "state/graph mismatch");
        let ca = self.contention(a);
        let cb = self.contention(b);
        let l1: f64 = ca.iter().zip(&cb).map(|(x, y)| (x - y).abs()).sum();
        l1 / a.len() as f64
    }

    fn name(&self) -> &'static str {
        "walk-dist"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snd_graph::generators::path_graph;
    use snd_models::Opinion;

    fn states() -> (NetworkState, NetworkState) {
        (
            NetworkState::from_values(&[1, 0, -1, 0, 1]),
            NetworkState::from_values(&[1, 1, -1, -1, 0]),
        )
    }

    #[test]
    fn hamming_counts_differences() {
        let (a, b) = states();
        assert_eq!(Hamming.distance(&a, &b), 3.0);
        assert_eq!(Hamming.distance(&a, &a), 0.0);
    }

    #[test]
    fn l1_weighs_polarity_flips_double() {
        let a = NetworkState::from_values(&[1, 0]);
        let b = NetworkState::from_values(&[-1, 1]);
        // |1 − (−1)| + |0 − 1| = 3.
        assert_eq!(L1.distance(&a, &b), 3.0);
    }

    #[test]
    fn quad_form_counts_edge_disagreements() {
        let g = path_graph(3);
        let qf = QuadForm::new(&g);
        let a = NetworkState::from_values(&[0, 0, 0]);
        let b = NetworkState::from_values(&[1, 0, 0]);
        // diff = [1,0,0]: one tie with (1-0)^2 = 1 -> sqrt(1) = 1.
        assert!((qf.distance(&a, &b) - 1.0).abs() < 1e-12);
        // Smooth change along the path is "cheaper" than a spike.
        let smooth = NetworkState::from_values(&[1, 1, 1]);
        let spike = NetworkState::from_values(&[1, -1, 1]);
        assert!(qf.distance(&a, &smooth) < qf.distance(&a, &spike));
    }

    #[test]
    fn quad_form_is_symmetric() {
        let g = path_graph(5);
        let qf = QuadForm::new(&g);
        let (a, b) = states();
        assert!((qf.distance(&a, &b) - qf.distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn walk_dist_contention_matches_hand_computation() {
        // Path 0-1-2 with state [+1, -1, 0]:
        // cnt(0): in-neighbor 1 active (-1) => |1 - (-1)| = 2
        // cnt(1): in-neighbors 0 (+1), 2 (neutral) => |−1 − 1| = 2
        // cnt(2): in-neighbor 1 (−1) => |0 − (−1)| = 1
        let g = path_graph(3);
        let wd = WalkDist::new(&g);
        let s = NetworkState::from_values(&[1, -1, 0]);
        assert_eq!(wd.contention(&s), vec![2.0, 2.0, 1.0]);
    }

    #[test]
    fn walk_dist_zero_for_identical_states() {
        let g = path_graph(5);
        let wd = WalkDist::new(&g);
        let (a, _) = states();
        assert_eq!(wd.distance(&a, &a), 0.0);
    }

    #[test]
    fn walk_dist_ignores_isolated_users() {
        let g = snd_graph::CsrGraph::from_edges(3, &[(0, 1), (1, 0)]);
        let wd = WalkDist::new(&g);
        let mut a = NetworkState::new_neutral(3);
        let mut b = NetworkState::new_neutral(3);
        // User 2 has no in-neighbors: flipping it changes nothing.
        a.set(2, Opinion::Positive);
        b.set(2, Opinion::Negative);
        assert_eq!(wd.distance(&a, &b), 0.0);
    }
}
