//! Baseline distance measures and opinion predictors that the paper
//! compares SND against (§6.1, §6.3).
//!
//! Distance measures over network states:
//!
//! * [`Hamming`] — coordinate-wise disagreement count, representing all
//!   coordinate-wise measures;
//! * [`L1`] — `Σ|P_i − Q_i|` on the ±1/0 encoding (§6.4);
//! * [`QuadForm`] — `sqrt((P−Q)ᵀ L (P−Q))` with the network Laplacian;
//! * [`WalkDist`] — `(1/n)·‖cnt(P) − cnt(Q)‖₁` where `cnt(P)_i` measures how
//!   far user `i`'s opinion deviates from her average active in-neighbor.
//!
//! Non-distance-based predictors:
//!
//! * [`predict::nhood_voting`] — probabilistic vote over active
//!   in-neighbors;
//! * [`predict::community_lp`] — label-propagation communities + majority
//!   opinion per community (Conover et al.-style).

pub mod distances;
pub mod predict;

pub use distances::{Hamming, QuadForm, StateDistance, WalkDist, L1};
