//! Measurement-driven lease autotuning.
//!
//! The static [`auto_tile`](snd_core::auto_tile) heuristic has to guess a
//! tile size once, up front, from `(states, nodes)` alone — it cannot
//! know that tile 0's states share no geometry with anything else, or
//! that one worker is a 4× faster machine. The orchestrator replaces the
//! guess with measurement on two axes:
//!
//! * **Grid**: [`orchestrate_tile`] picks a *finer* base grid than
//!   `auto_tile` (never coarser). Small tiles are the scheduling atoms;
//!   what `auto_tile` buys with big tiles — amortized per-state geometry
//!   — leases buy back by handing out *runs of adjacent tiles*, which
//!   share block-row states inside one worker invocation.
//! * **Leases**: the [`Autotuner`] predicts each tile's cost from
//!   observed wall times (its own run's, or `W` checkpoint lines from an
//!   earlier run via [`warm_start`](Autotuner::warm_start)) and composes
//!   leases to a target duration — slow tiles ride alone (the "split"),
//!   fast tiles coalesce (the "merge"), and a worker's measured
//!   throughput scales its lease (fast workers get more, stragglers
//!   less, which is also what keeps re-dispatch cheap).
//!
//! Until the first measurement lands, every lease is a single tile: the
//! first round of results *is* the calibration run.

use std::collections::BTreeSet;

use snd_core::{TileGrid, TileSet};

/// Hard cap on tiles per lease: bounds what one worker death can strand,
/// whatever the cost model claims.
pub const MAX_LEASE_TILES: usize = 64;

/// Picks the orchestrated base-grid tile size. Finer than (never coarser
/// than) [`auto_tile`](snd_core::auto_tile): roughly 24 block-rows
/// instead of 8, clamped to the static heuristic's choice, so the
/// autotuner has enough scheduling atoms to compose uneven leases from.
///
/// Like `auto_tile` this is a pure function of the workload shape —
/// workers derive the same grid from the coordinator's `GRID` line, so
/// determinism of the artifact never depends on it.
pub fn orchestrate_tile(states: usize, nodes: usize) -> usize {
    let k = states.max(2);
    let fine = k.div_ceil(24).max(1);
    fine.min(snd_core::auto_tile(states, nodes))
}

/// Per-tile cost model plus lease composition. Costs are wall seconds;
/// unmeasured tiles are estimated from the observed per-pair rate.
#[derive(Debug)]
pub struct Autotuner {
    grid: TileGrid,
    /// Measured (or warm-started) seconds per tile.
    measured: Vec<Option<f64>>,
    /// EWMA of observed seconds-per-pair across all measurements.
    rate: Option<f64>,
    /// Target lease duration in seconds.
    target_s: f64,
}

impl Autotuner {
    /// A tuner for `grid`, aiming leases at `target_s` wall seconds.
    pub fn new(grid: TileGrid, target_s: f64) -> Self {
        Autotuner {
            measured: vec![None; grid.tile_count()],
            rate: None,
            target_s: target_s.max(1e-3),
            grid,
        }
    }

    /// Seeds the cost model from a resumed checkpoint's `W` lines — the
    /// warm start that makes rerun leases well-shaped from the first
    /// dispatch.
    pub fn warm_start(&mut self, set: &TileSet) {
        for id in 0..self.grid.tile_count() {
            if let Some(secs) = set.timing(id) {
                self.observe(id, secs);
            }
        }
    }

    /// Records one observed tile time (from a `W` result line).
    /// Non-finite or negative observations are ignored — a corrupt
    /// measurement must not poison the model.
    pub fn observe(&mut self, id: usize, secs: f64) {
        if id >= self.measured.len() || !secs.is_finite() || secs < 0.0 {
            return;
        }
        self.measured[id] = Some(secs);
        let pairs = self.grid.pair_count(id);
        if pairs > 0 {
            let r = secs / pairs as f64;
            // EWMA with a heavy new-sample weight: the model should
            // track warming caches and shifting load, not average over
            // the cold start forever.
            self.rate = Some(match self.rate {
                Some(old) => 0.7 * r + 0.3 * old,
                None => r,
            });
        }
    }

    /// Predicted cost of a tile: its own measurement, else the rate
    /// model, else `None` (nothing measured yet anywhere).
    pub fn predict(&self, id: usize) -> Option<f64> {
        if let Some(secs) = self.measured.get(id).copied().flatten() {
            return Some(secs);
        }
        self.rate.map(|r| r * self.grid.pair_count(id) as f64)
    }

    /// Composes the next lease from `pending` (ascending, so a lease is
    /// a run of adjacent tiles sharing block-row geometry), removing the
    /// chosen tiles. `speed` scales the target: a worker measured twice
    /// as fast as the fleet average gets a lease twice as long, an idle
    /// or unknown worker gets the base target.
    ///
    /// Shape rules, in order:
    /// * no measurements at all → single tile (calibration);
    /// * a tile predicted ≥ target rides alone (split: a straggler tile
    ///   must not drag neighbours into its re-dispatch blast radius);
    /// * otherwise coalesce until the target (or [`MAX_LEASE_TILES`]) is
    ///   reached.
    pub fn compose(&self, pending: &mut BTreeSet<usize>, speed: f64) -> Vec<usize> {
        let target = self.target_s * speed.clamp(0.25, 4.0);
        let mut out = Vec::new();
        let mut sum = 0.0;
        while let Some(&id) = pending.iter().next() {
            let Some(p) = self.predict(id) else {
                // Calibration: nothing measured yet — lease one tile.
                if out.is_empty() {
                    pending.remove(&id);
                    out.push(id);
                }
                return out;
            };
            if !out.is_empty() && (sum + p > target || out.len() >= MAX_LEASE_TILES) {
                break;
            }
            pending.remove(&id);
            out.push(id);
            sum += p;
            if p >= target {
                // A heavy tile fills its lease alone.
                break;
            }
        }
        out
    }

    /// Predicted wall seconds of a tile list (for lease deadlines);
    /// unpredictable tiles count as one target each.
    pub fn predict_lease(&self, tiles: &[usize]) -> f64 {
        tiles
            .iter()
            .map(|&id| self.predict(id).unwrap_or(self.target_s))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orchestrate_tile_is_finer_than_auto_tile_never_coarser() {
        // The skewed-workload sizes the static heuristic was tuned for:
        // the orchestrated grid demonstrably differs (finer), giving the
        // tuner atoms to compose from.
        let cases = [(256usize, 100_000usize), (128, 50_000), (256, 1_000_000)];
        for (states, nodes) in cases {
            let stat = snd_core::auto_tile(states, nodes);
            let orch = orchestrate_tile(states, nodes);
            assert!(orch >= 1);
            assert!(orch <= stat, "k={states} n={nodes}: {orch} > {stat}");
            assert!(orch < stat, "k={states} n={nodes}: expected finer grid");
            assert!(
                TileGrid::new(states, orch).tile_count() > TileGrid::new(states, stat).tile_count()
            );
        }
        // Tiny grids collapse to the static answer rather than below 1.
        assert_eq!(orchestrate_tile(4, 1_000), 1);
        assert!(orchestrate_tile(0, 0) >= 1);
    }

    #[test]
    fn leases_start_singleton_then_coalesce_and_split_on_skew() {
        // 16 states, tile 2 → 36 tiles. Tile 0 is pathologically slow
        // (skewed workload); the rest are fast.
        let grid = TileGrid::new(16, 2);
        let mut tuner = Autotuner::new(grid, 0.1);
        let mut pending: BTreeSet<usize> = (0..grid.tile_count()).collect();

        // Cold: calibration leases are singletons — exactly the static
        // one-tile-at-a-time behaviour auto_tile sharding gives.
        let first = tuner.compose(&mut pending, 1.0);
        assert_eq!(first.len(), 1);

        // Measurements arrive: tile 0 took 1s, tiles 1..10 took 2ms.
        tuner.observe(0, 1.0);
        for id in 1..10 {
            tuner.observe(id, 0.002);
        }

        // Re-queue everything and compose the full schedule.
        pending = (0..grid.tile_count()).collect();
        let mut leases = Vec::new();
        while !pending.is_empty() {
            leases.push(tuner.compose(&mut pending, 1.0));
        }
        // The slow tile rides alone (split)...
        let with_zero = leases.iter().find(|l| l.contains(&0)).unwrap();
        assert_eq!(with_zero, &vec![0], "slow tile must not drag neighbours");
        // ...fast tiles coalesce (autotuned sizing differs from the
        // static uniform grid)...
        assert!(
            leases.iter().any(|l| l.len() >= 4),
            "fast tiles should coalesce: {leases:?}"
        );
        // ...and every tile is leased exactly once.
        let mut all: Vec<usize> = leases.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..grid.tile_count()).collect::<Vec<_>>());
    }

    #[test]
    fn fast_workers_get_longer_leases() {
        let grid = TileGrid::new(16, 2);
        let mut tuner = Autotuner::new(grid, 0.1);
        for id in 0..grid.tile_count() {
            tuner.observe(id, 0.01);
        }
        let mut slow_q: BTreeSet<usize> = (0..grid.tile_count()).collect();
        let mut fast_q = slow_q.clone();
        let slow = tuner.compose(&mut slow_q, 0.25);
        let fast = tuner.compose(&mut fast_q, 4.0);
        assert!(
            fast.len() > slow.len(),
            "fast {} vs slow {}",
            fast.len(),
            slow.len()
        );
    }

    #[test]
    fn warm_start_seeds_the_model_from_checkpoint_timings() {
        let grid = TileGrid::new(8, 2);
        let mut set = TileSet::empty(grid, 0);
        for id in 0..grid.tile_count() {
            set.insert(id, vec![0.0; grid.pair_count(id)]);
            set.set_timing(id, if id == 0 { 2.0 } else { 0.001 });
        }
        let mut tuner = Autotuner::new(grid, 0.1);
        assert_eq!(tuner.predict(0), None, "cold model predicts nothing");
        tuner.warm_start(&set);
        assert_eq!(tuner.predict(0), Some(2.0));
        // The very first composed lease is already skew-shaped: tile 0
        // alone, despite zero observations in *this* run.
        let mut pending: BTreeSet<usize> = (0..grid.tile_count()).collect();
        assert_eq!(tuner.compose(&mut pending, 1.0), vec![0]);
        let next = tuner.compose(&mut pending, 1.0);
        assert!(next.len() > 1, "fast tiles coalesce from the warm start");
    }

    #[test]
    fn corrupt_observations_are_ignored() {
        let grid = TileGrid::new(8, 2);
        let mut tuner = Autotuner::new(grid, 0.1);
        tuner.observe(0, f64::NAN);
        tuner.observe(1, f64::INFINITY);
        tuner.observe(2, -1.0);
        tuner.observe(999, 1.0);
        assert_eq!(tuner.predict(0), None);
        assert_eq!(tuner.predict(1), None);
        assert_eq!(tuner.predict(2), None);
    }
}
