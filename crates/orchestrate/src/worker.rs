//! The worker loop: handshake, lease, compute, stream, repeat.
//!
//! Results are streamed with a double-buffered writer: each finished
//! tile's `T`/`I`/`W` lines go into an output buffer which is drained
//! *nonblocking* while the engine computes the next tile — the kernel's
//! socket buffer does the sending, so tile *k*'s flush overlaps tile
//! *k+1*'s compute with no second thread. Whatever the drain could not
//! place is settled by one blocking flush at lease end; the time spent
//! there is the `flush_wait_s` the bench ablation measures (with
//! `overlap: false` every tile is flushed blocking, which is the
//! ablation baseline).

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use snd_core::{ShardPlan, SndEngine, TileGrid};
use snd_models::NetworkState;

use crate::net::{connect, Endpoint, Stream};
use crate::protocol::{
    parse_coordinator_msg, worker_line, CoordinatorMsg, WorkerMsg, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
use crate::OrchestrateError;

/// Worker tuning knobs.
#[derive(Clone, Debug)]
pub struct WorkerOpts {
    /// Overlap result streaming with compute (the double-buffered
    /// writer). `false` flushes each tile blocking — the bench ablation.
    pub overlap: bool,
    /// How long to retry the initial connect (workers usually start
    /// before the coordinator binds).
    pub connect_retry: Duration,
    /// Blocking-read timeout: a silent coordinator is an error, not a
    /// hang.
    pub read_timeout: Duration,
    /// Artificial per-tile delay. A test/bench hook (set from
    /// `SND_WORK_THROTTLE_MS` by the CLI) that turns this worker into a
    /// deterministic straggler for kill/re-dispatch scenarios.
    pub throttle: Duration,
}

impl Default for WorkerOpts {
    fn default() -> Self {
        WorkerOpts {
            overlap: true,
            connect_retry: Duration::from_secs(10),
            read_timeout: Duration::from_secs(120),
            throttle: Duration::ZERO,
        }
    }
}

/// What a worker did, for the CLI to print (the bench parses these).
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerReport {
    /// Leases completed.
    pub leases: usize,
    /// Tiles computed and streamed.
    pub tiles: usize,
    /// Seconds inside the engine's tile computation.
    pub compute_s: f64,
    /// Seconds blocked flushing results (what overlap eliminates).
    pub flush_wait_s: f64,
}

/// Runs the worker loop against the coordinator at `addr` until `DONE`.
///
/// The engine/states pair must be the same dataset and configuration the
/// coordinator opened — enforced by the `shard_fingerprint` handshake,
/// which is what makes every accepted tile bit-identical to what any
/// other worker (or the sequential path) would produce.
pub fn run_worker(
    engine: &SndEngine<'_>,
    states: &[NetworkState],
    addr: &str,
    opts: &WorkerOpts,
) -> Result<WorkerReport, OrchestrateError> {
    let ep = Endpoint::parse(addr)?;
    let mut stream = connect(&ep, opts.connect_retry)?;
    stream.set_read_timeout(Some(opts.read_timeout))?;
    let fingerprint = engine.shard_fingerprint(states);

    send_all(
        &mut stream,
        worker_line(&WorkerMsg::Hello {
            version: PROTOCOL_VERSION,
            fingerprint,
            k: states.len(),
        })
        .as_bytes(),
    )?;
    let mut inbuf = Vec::new();
    let grid = match read_msg(&mut stream, &mut inbuf)? {
        CoordinatorMsg::Grid {
            k,
            tile,
            fingerprint: fp,
        } => {
            if k != states.len() || fp != fingerprint {
                return Err(OrchestrateError::Handshake(format!(
                    "coordinator run (k={k}, fingerprint {fp:016x}) does not match this \
                     worker's dataset (k={}, fingerprint {fingerprint:016x})",
                    states.len()
                )));
            }
            TileGrid::new(k, tile)
        }
        CoordinatorMsg::Err(m) => return Err(OrchestrateError::Handshake(m)),
        other => {
            return Err(OrchestrateError::Handshake(format!(
                "expected GRID, got {other:?}"
            )))
        }
    };

    let mut report = WorkerReport::default();
    loop {
        send_all(&mut stream, worker_line(&WorkerMsg::Next).as_bytes())?;
        match read_msg(&mut stream, &mut inbuf)? {
            CoordinatorMsg::Lease { tiles, .. } => {
                compute_lease(engine, states, &grid, tiles, &mut stream, opts, &mut report)?;
                report.leases += 1;
            }
            CoordinatorMsg::Wait(ms) => {
                std::thread::sleep(Duration::from_millis(ms.min(1_000)));
            }
            CoordinatorMsg::Done => {
                let _ = send_all(&mut stream, worker_line(&WorkerMsg::Bye).as_bytes());
                return Ok(report);
            }
            CoordinatorMsg::Err(m) => return Err(OrchestrateError::Failed(m)),
            CoordinatorMsg::Grid { .. } => {
                return Err(OrchestrateError::Protocol {
                    line: "GRID".into(),
                    reason: "unexpected second GRID".into(),
                })
            }
        }
    }
}

/// Computes one lease, streaming each tile as it finishes.
fn compute_lease(
    engine: &SndEngine<'_>,
    states: &[NetworkState],
    grid: &TileGrid,
    tiles: Vec<usize>,
    stream: &mut Stream,
    opts: &WorkerOpts,
    report: &mut WorkerReport,
) -> Result<(), OrchestrateError> {
    let plan = ShardPlan::explicit(*grid, tiles)?;
    let mut outbuf: Vec<u8> = Vec::new();
    let mut io_err: Option<std::io::Error> = None;
    let flush_before = report.flush_wait_s;
    let compute_started = Instant::now();
    let result = engine.pairwise_tiles_with(states, &plan, &mut |id, values, ivs, secs| {
        if !opts.throttle.is_zero() {
            // Deterministic straggler hook for kill/re-dispatch tests.
            std::thread::sleep(opts.throttle);
        }
        let mut lines = String::new();
        snd_core::tile_line(&mut lines, id, values);
        if let Some(ivs) = ivs {
            snd_core::interval_line(&mut lines, id, ivs);
        }
        snd_core::timing_line(&mut lines, id, secs + opts.throttle.as_secs_f64());
        outbuf.extend_from_slice(lines.as_bytes());
        report.tiles += 1;
        let drained = if opts.overlap {
            // Double-buffered: push what fits into the kernel's socket
            // buffer and return to computing; the remainder rides along
            // with the next tile or the end-of-lease flush.
            drain_nonblocking(stream, &mut outbuf)
        } else {
            // Ablation baseline: settle every tile before computing on.
            let t0 = Instant::now();
            let r = drain_blocking(stream, &mut outbuf);
            report.flush_wait_s += t0.elapsed().as_secs_f64();
            r
        };
        if let Err(e) = drained {
            io_err = Some(e);
            // Any shard error aborts the engine loop; the real cause is
            // restored below.
            return Err(snd_core::ShardError::Format("socket write failed".into()));
        }
        Ok(())
    });
    match result {
        Ok(_) => {}
        Err(e) => {
            return Err(match io_err {
                Some(io) => OrchestrateError::Io(io),
                None => e.into(),
            })
        }
    }
    // End-of-lease settlement: everything the overlapped drain couldn't
    // place goes out now, blocking. With overlap this is usually empty.
    let t0 = Instant::now();
    drain_blocking(stream, &mut outbuf)?;
    report.flush_wait_s += t0.elapsed().as_secs_f64();
    let lease_flush = report.flush_wait_s - flush_before;
    report.compute_s += (compute_started.elapsed().as_secs_f64() - lease_flush).max(0.0);
    Ok(())
}

/// Nonblocking drain: writes what the socket accepts, keeps the rest.
fn drain_nonblocking(stream: &mut Stream, buf: &mut Vec<u8>) -> std::io::Result<()> {
    stream.set_nonblocking(true)?;
    loop {
        if buf.is_empty() {
            break;
        }
        match stream.write(buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "coordinator closed the connection",
                ))
            }
            Ok(n) => {
                buf.drain(..n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    stream.set_nonblocking(false)?;
    Ok(())
}

/// Blocking drain: settles the whole buffer.
fn drain_blocking(stream: &mut Stream, buf: &mut Vec<u8>) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.write_all(buf)?;
    buf.clear();
    stream.flush()?;
    Ok(())
}

fn send_all(stream: &mut Stream, bytes: &[u8]) -> Result<(), OrchestrateError> {
    stream.set_nonblocking(false)?;
    stream.write_all(bytes)?;
    stream.flush()?;
    Ok(())
}

/// Reads one newline-terminated coordinator message (blocking, bounded
/// by the stream's read timeout).
fn read_msg(stream: &mut Stream, inbuf: &mut Vec<u8>) -> Result<CoordinatorMsg, OrchestrateError> {
    stream.set_nonblocking(false)?;
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(nl) = inbuf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = inbuf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line_bytes[..nl]).into_owned();
            return parse_coordinator_msg(&line);
        }
        if inbuf.len() > MAX_LINE_BYTES {
            return Err(OrchestrateError::Protocol {
                line: "<oversized>".into(),
                reason: "coordinator line exceeds maximum length".into(),
            });
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(OrchestrateError::Failed(
                    "coordinator closed the connection".into(),
                ))
            }
            Ok(n) => inbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
}
