//! The coordinator: owns the grid and the checkpoint, leases tiles,
//! re-dispatches stragglers, dedups duplicates first-result-wins.
//!
//! Single-threaded nonblocking poll loop — [`Coordinator::poll_once`]
//! accepts connections, drains readable bytes, handles complete lines,
//! and expires leases; [`Coordinator::run`] wraps it in a sleep loop.
//! Tests drive `poll_once` directly against in-process fake workers, so
//! every race (expiry vs. late result, duplicate submission, kill
//! mid-lease) is steppable and deterministic.
//!
//! Correctness invariants:
//! * a tile enters the [`TileSet`] (and the checkpoint file) exactly
//!   once — the *first* accepted `T` line wins; later copies, identical
//!   or not, are counted and dropped (the fingerprint handshake already
//!   guarantees any honest duplicate is bit-identical, since tile values
//!   are a pure function of the fingerprinted inputs);
//! * a lease's tiles return to the pending pool the moment its
//!   connection dies (EOF) or its deadline passes — whichever is first —
//!   so a straggler can only waste its own time, never block the run;
//! * `I`/`W` lines attach only to the tile the same connection just
//!   submitted, mirroring checkpoint line order — a worker whose tile
//!   lost the dedup race cannot corrupt the winner's certification.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use snd_core::{Checkpoint, ShardError, TileGrid, TileSet};

use crate::autotune::Autotuner;
use crate::net::{Endpoint, Listener, Stream};
use crate::protocol::{
    coordinator_line, parse_worker_msg, CoordinatorMsg, WorkerMsg, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
use crate::OrchestrateError;

/// Tuning knobs for a coordinator run.
#[derive(Clone, Debug)]
pub struct CoordinatorOpts {
    /// Minimum lease lifetime; the effective deadline per lease is
    /// `max(lease_timeout, 5 × predicted lease seconds)`, so a generous
    /// floor never strands a genuinely long tile.
    pub lease_timeout: Duration,
    /// Target lease duration the autotuner composes toward.
    pub target_lease: Duration,
    /// How long `run` lingers after completion so connected workers can
    /// collect their `DONE` (exits early once every connection closes).
    pub grace: Duration,
}

impl Default for CoordinatorOpts {
    fn default() -> Self {
        CoordinatorOpts {
            lease_timeout: Duration::from_secs(30),
            target_lease: Duration::from_secs(2),
            grace: Duration::from_secs(5),
        }
    }
}

/// What a finished orchestration reports.
#[derive(Clone, Debug)]
pub struct OrchestrateReport {
    /// Total grid tiles.
    pub tiles: usize,
    /// Tiles already complete in the checkpoint at startup.
    pub resumed: usize,
    /// Tiles accepted from workers this run.
    pub computed: usize,
    /// Tiles re-queued after a lease expired or its worker died.
    pub redispatched: usize,
    /// Duplicate `T` submissions dropped (first result won).
    pub duplicates: usize,
    /// Distinct workers that completed the handshake.
    pub workers: usize,
    /// Connections dropped for protocol violations or bad handshakes.
    pub rejected: usize,
    /// Wall time of the run.
    pub wall: Duration,
}

struct Lease {
    id: u64,
    conn: u64,
    missing: BTreeSet<usize>,
    deadline: Instant,
}

struct Conn {
    id: u64,
    stream: Stream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    hello: bool,
    /// Tile of the last `T` line accepted fresh from this connection —
    /// the only tile its `I`/`W` lines may certify/time.
    last_tile: Option<usize>,
    /// Throughput model: pairs completed and busy seconds, for lease
    /// scaling.
    pairs_done: f64,
    busy_s: f64,
    lease_started: Option<Instant>,
    closing: bool,
}

impl Conn {
    fn send(&mut self, msg: &CoordinatorMsg) {
        self.outbuf
            .extend_from_slice(coordinator_line(msg).as_bytes());
    }
}

/// The coordinator. See the module docs for the model; construct with
/// [`Coordinator::new`], then either [`run`](Coordinator::run) to
/// completion or step [`poll_once`](Coordinator::poll_once) manually.
pub struct Coordinator {
    grid: TileGrid,
    fingerprint: u64,
    set: TileSet,
    ckpt: Checkpoint,
    listener: Listener,
    pending: BTreeSet<usize>,
    leases: Vec<Lease>,
    conns: Vec<Conn>,
    tuner: Autotuner,
    opts: CoordinatorOpts,
    next_lease: u64,
    next_conn: u64,
    started: Instant,
    resumed: usize,
    computed: usize,
    redispatched: usize,
    duplicates: usize,
    workers: usize,
    rejected: usize,
    /// Global mean throughput (pairs/s EWMA) for worker speed scaling.
    fleet_rate: Option<f64>,
}

impl Coordinator {
    /// Binds `listen` and opens (or resumes) the checkpoint at `path`
    /// for a `(grid, fingerprint)` run. Tiles already in the checkpoint
    /// are honored — a complete checkpoint makes the run a no-op — and
    /// their `W` lines warm-start the autotuner.
    pub fn new(
        listen: &Endpoint,
        path: &Path,
        grid: TileGrid,
        fingerprint: u64,
        opts: CoordinatorOpts,
    ) -> Result<Coordinator, OrchestrateError> {
        let (set, ckpt) = Checkpoint::open(path, grid, fingerprint)?;
        let listener = Listener::bind(listen)?;
        let pending: BTreeSet<usize> = (0..grid.tile_count())
            .filter(|&id| !set.contains(id))
            .collect();
        let resumed = grid.tile_count() - pending.len();
        let mut tuner = Autotuner::new(grid, opts.target_lease.as_secs_f64());
        tuner.warm_start(&set);
        Ok(Coordinator {
            grid,
            fingerprint,
            set,
            ckpt,
            listener,
            pending,
            leases: Vec::new(),
            conns: Vec::new(),
            tuner,
            opts,
            next_lease: 0,
            next_conn: 0,
            started: Instant::now(),
            resumed,
            computed: 0,
            redispatched: 0,
            duplicates: 0,
            workers: 0,
            rejected: 0,
            fleet_rate: None,
        })
    }

    /// The bound address workers should connect to (TCP port resolved).
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// Whether every grid tile is present (the matrix is whole).
    pub fn is_complete(&self) -> bool {
        self.set.tile_count() == self.grid.tile_count()
    }

    /// Consumes the coordinator, returning the (possibly incomplete)
    /// tile set.
    pub fn into_tiles(self) -> TileSet {
        self.set
    }

    /// Run statistics so far.
    pub fn report(&self) -> OrchestrateReport {
        OrchestrateReport {
            tiles: self.grid.tile_count(),
            resumed: self.resumed,
            computed: self.computed,
            redispatched: self.redispatched,
            duplicates: self.duplicates,
            workers: self.workers,
            rejected: self.rejected,
            wall: self.started.elapsed(),
        }
    }

    /// One poll step: accept, read, handle, expire, flush. Returns
    /// whether anything happened (callers sleep briefly on `false`).
    /// Per-connection protocol violations close that connection;
    /// checkpoint IO errors abort the run.
    pub fn poll_once(&mut self) -> Result<bool, OrchestrateError> {
        let mut progress = false;
        while let Some(stream) = self.listener.accept()? {
            self.conns.push(Conn {
                id: self.next_conn,
                stream,
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                hello: false,
                last_tile: None,
                pairs_done: 0.0,
                busy_s: 0.0,
                lease_started: None,
                closing: false,
            });
            self.next_conn += 1;
            progress = true;
        }

        for i in 0..self.conns.len() {
            progress |= self.service_conn(i)?;
        }
        progress |= self.expire_leases();

        // Drop connections that hit EOF or a violation, releasing their
        // leases immediately — a killed worker's tiles go straight back
        // into the pool, no need to wait out the deadline.
        let mut released: Vec<u64> = Vec::new();
        self.conns.retain(|c| {
            if c.closing && c.outbuf.is_empty() {
                released.push(c.id);
                false
            } else {
                true
            }
        });
        for conn in released {
            progress |= self.release_conn_leases(conn);
        }
        Ok(progress)
    }

    /// Polls until complete, then lingers `grace` for workers to collect
    /// `DONE`. Errors out if every connection is gone, nothing is
    /// leased, and nothing is pending-able — which cannot happen while
    /// tiles remain, so the only exit without completion is an IO error.
    pub fn run(&mut self) -> Result<OrchestrateReport, OrchestrateError> {
        while !self.is_complete() {
            if !self.poll_once()? {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        self.finish()?;
        Ok(self.report())
    }

    /// Post-completion linger: keep answering `NEXT` with `DONE` until
    /// every connection closes or the grace period ends.
    pub fn finish(&mut self) -> Result<(), OrchestrateError> {
        let deadline = Instant::now() + self.opts.grace;
        while !self.conns.is_empty() && Instant::now() < deadline {
            if !self.poll_once()? {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        Ok(())
    }

    /// Reads, parses, and answers one connection; returns progress.
    fn service_conn(&mut self, i: usize) -> Result<bool, OrchestrateError> {
        let mut progress = false;
        // Drain pending output first (nonblocking): small control lines
        // almost always fit the socket buffer in one write.
        {
            let c = &mut self.conns[i];
            while !c.outbuf.is_empty() {
                match c.stream.write(&c.outbuf) {
                    Ok(0) => {
                        c.closing = true;
                        c.outbuf.clear();
                        break;
                    }
                    Ok(n) => {
                        c.outbuf.drain(..n);
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        c.closing = true;
                        c.outbuf.clear();
                        break;
                    }
                }
            }
        }

        // Read what's available.
        let mut buf = [0u8; 16 * 1024];
        loop {
            let c = &mut self.conns[i];
            if c.closing {
                break;
            }
            match c.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF: the worker exited or was killed.
                    c.closing = true;
                    c.outbuf.clear();
                    progress = true;
                    break;
                }
                Ok(n) => {
                    c.inbuf.extend_from_slice(&buf[..n]);
                    progress = true;
                    if c.inbuf.len() > MAX_LINE_BYTES {
                        self.reject(i, "line exceeds maximum length");
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.conns[i].closing = true;
                    break;
                }
            }
        }

        // Handle every complete line buffered so far.
        loop {
            let c = &mut self.conns[i];
            if c.closing {
                break;
            }
            let Some(nl) = c.inbuf.iter().position(|&b| b == b'\n') else {
                break;
            };
            let line_bytes: Vec<u8> = c.inbuf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line_bytes[..nl]).into_owned();
            progress = true;
            self.handle_line(i, line.trim_end())?;
        }
        Ok(progress)
    }

    /// Sends `ERR` and schedules the connection for closing.
    fn reject(&mut self, i: usize, why: &str) {
        self.rejected += 1;
        let c = &mut self.conns[i];
        c.send(&CoordinatorMsg::Err(why.to_string()));
        // Give the ERR line one direct flush attempt, then close.
        let _ = c.stream.write(&c.outbuf);
        c.outbuf.clear();
        c.closing = true;
    }

    fn handle_line(&mut self, i: usize, line: &str) -> Result<(), OrchestrateError> {
        let msg = match parse_worker_msg(line, &self.grid) {
            Ok(m) => m,
            Err(OrchestrateError::Protocol { reason, line }) => {
                self.reject(i, &format!("{reason} in {line:?}"));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if !self.conns[i].hello {
            // Only HELLO is meaningful before the handshake.
            let WorkerMsg::Hello {
                version,
                fingerprint,
                k,
            } = msg
            else {
                self.reject(i, "expected HELLO before anything else");
                return Ok(());
            };
            if version != PROTOCOL_VERSION {
                self.reject(
                    i,
                    &format!("protocol version {version}, coordinator speaks {PROTOCOL_VERSION}"),
                );
            } else if fingerprint != self.fingerprint {
                self.reject(
                    i,
                    &format!(
                        "dataset fingerprint {fingerprint:016x} does not match run {:016x} \
                         (different graph, snapshots, or engine config)",
                        self.fingerprint
                    ),
                );
            } else if k != self.grid.states() {
                self.reject(i, &format!("{k} snapshots, run has {}", self.grid.states()));
            } else {
                self.conns[i].hello = true;
                self.workers += 1;
                let reply = CoordinatorMsg::Grid {
                    k: self.grid.states(),
                    tile: self.grid.tile_size(),
                    fingerprint: self.fingerprint,
                };
                self.conns[i].send(&reply);
            }
            return Ok(());
        }
        match msg {
            WorkerMsg::Hello { .. } => self.reject(i, "duplicate HELLO"),
            WorkerMsg::Next => self.grant(i),
            WorkerMsg::Tile { id, values } => self.accept_tile(i, id, values)?,
            WorkerMsg::Interval { id, intervals } => {
                // Attach only to the tile this connection just won —
                // once; a deduped duplicate's certification is silently
                // dropped with it (the loader accepts at most one `I`
                // line per tile, so the checkpoint must too).
                if self.conns[i].last_tile == Some(id) && !self.set.is_certified(id) {
                    self.ckpt.append_intervals(id, &intervals)?;
                    self.set.certify(id, intervals);
                }
            }
            WorkerMsg::Timing { id, secs } => {
                if self.conns[i].last_tile == Some(id) && self.set.timing(id).is_none() {
                    self.tuner.observe(id, secs);
                    self.set.set_timing(id, secs);
                    self.ckpt.append_timing(id, secs)?;
                }
            }
            WorkerMsg::Bye => {
                self.conns[i].closing = true;
            }
        }
        Ok(())
    }

    /// Answers a `NEXT`: lease, wait, or done.
    fn grant(&mut self, i: usize) {
        if self.is_complete() {
            self.conns[i].send(&CoordinatorMsg::Done);
            return;
        }
        let speed = self.conn_speed(i);
        let tiles = self.tuner.compose(&mut self.pending, speed);
        if tiles.is_empty() {
            // Everything is leased out; outstanding leases may yet
            // expire back into the pool.
            self.conns[i].send(&CoordinatorMsg::Wait(50));
            return;
        }
        let predicted = self.tuner.predict_lease(&tiles);
        let timeout = self
            .opts
            .lease_timeout
            .max(Duration::from_secs_f64(5.0 * predicted));
        let lease = Lease {
            id: self.next_lease,
            conn: self.conns[i].id,
            missing: tiles.iter().copied().collect(),
            deadline: Instant::now() + timeout,
        };
        self.next_lease += 1;
        let msg = CoordinatorMsg::Lease {
            lease: lease.id,
            tiles,
        };
        self.leases.push(lease);
        self.conns[i].lease_started = Some(Instant::now());
        self.conns[i].send(&msg);
    }

    /// Accepts a `T` result line: first result wins, duplicates are
    /// counted and dropped, accepted tiles go straight to the checkpoint.
    fn accept_tile(&mut self, i: usize, id: usize, values: Vec<f64>) -> Result<(), ShardError> {
        if self.set.contains(id) {
            // First result won — whether from this worker earlier, a
            // re-dispatched twin, or the resumed checkpoint.
            self.duplicates += 1;
            self.conns[i].last_tile = None;
        } else {
            self.ckpt.append(id, &values, None, None)?;
            self.set.insert(id, values);
            self.computed += 1;
            self.conns[i].last_tile = Some(id);
        }
        // Either way the tile is no longer owed by any lease.
        let conn_id = self.conns[i].id;
        let mut finished_pairs = 0usize;
        for lease in &mut self.leases {
            if lease.missing.remove(&id) && lease.conn == conn_id {
                finished_pairs = self.grid.pair_count(id);
            }
        }
        self.leases.retain(|l| !l.missing.is_empty());
        if finished_pairs > 0 {
            let c = &mut self.conns[i];
            if let Some(t0) = c.lease_started {
                c.pairs_done += finished_pairs as f64;
                c.busy_s += t0.elapsed().as_secs_f64();
                c.lease_started = Some(Instant::now());
                let rate = c.pairs_done / c.busy_s.max(1e-6);
                self.fleet_rate = Some(match self.fleet_rate {
                    Some(old) => 0.7 * old + 0.3 * rate,
                    None => rate,
                });
            }
        }
        Ok(())
    }

    /// This connection's measured speed relative to the fleet (1.0 when
    /// unknown) — the autotuner's idle/fast-worker bias.
    fn conn_speed(&self, i: usize) -> f64 {
        let c = &self.conns[i];
        match (self.fleet_rate, c.busy_s > 0.0) {
            (Some(fleet), true) if fleet > 0.0 => (c.pairs_done / c.busy_s.max(1e-6)) / fleet,
            _ => 1.0,
        }
    }

    /// Returns expired leases' missing tiles to the pool.
    fn expire_leases(&mut self) -> bool {
        let now = Instant::now();
        let mut progress = false;
        let mut keep = Vec::with_capacity(self.leases.len());
        for lease in self.leases.drain(..) {
            if lease.deadline <= now {
                self.redispatched += lease.missing.len();
                self.pending.extend(lease.missing.iter().copied());
                progress = true;
            } else {
                keep.push(lease);
            }
        }
        self.leases = keep;
        progress
    }

    /// Releases every lease held by a dead connection.
    fn release_conn_leases(&mut self, conn: u64) -> bool {
        let mut progress = false;
        let mut keep = Vec::with_capacity(self.leases.len());
        for lease in self.leases.drain(..) {
            if lease.conn == conn {
                self.redispatched += lease.missing.len();
                self.pending.extend(lease.missing.iter().copied());
                progress = true;
            } else {
                keep.push(lease);
            }
        }
        self.leases = keep;
        progress
    }
}

/// Formats the one-line summary the CLI prints (and the CI smoke greps).
pub fn report_line(r: &OrchestrateReport) -> String {
    format!(
        "orchestrate: complete: {} tile(s) ({} resumed, {} computed) via {} worker(s); \
         re-dispatched: {} tile(s), duplicates: {}, rejected: {}, wall {:.1}s",
        r.tiles,
        r.resumed,
        r.computed,
        r.workers,
        r.redispatched,
        r.duplicates,
        r.rejected,
        r.wall.as_secs_f64()
    )
}
