//! The line-oriented wire protocol. One message per `\n`-terminated
//! line, ASCII, human-readable — and the result lines (`T`/`I`/`W`) are
//! *verbatim* checkpoint lines (`snd_core::shard`), so a worker's stream
//! is exactly the durable artifact the coordinator appends: hex-exact
//! f64 bits, validated pair counts, no separate serialization layer to
//! diverge.
//!
//! ```text
//! worker → coordinator             coordinator → worker
//! ─────────────────────            ─────────────────────
//! HELLO 1 <fp:hex16> k <k>         GRID k <k> tile <t> fingerprint <fp>
//! NEXT                             LEASE <lease_id> <n> <tile> ...
//! T <id> <count> <hex> ...         WAIT <millis>
//! I <id> <count> <lo> <hi> ...     DONE
//! W <id> <secs-hex>                ERR <message>
//! BYE
//! ```
//!
//! Lifecycle: `HELLO` (version + dataset fingerprint + snapshot count) is
//! answered by `GRID` or `ERR`; each `NEXT` is answered by `LEASE`,
//! `WAIT` (nothing leasable right now — outstanding leases may yet
//! expire), or `DONE` (matrix complete). Result lines may arrive at any
//! time after the handshake; an `I`/`W` line must follow the `T` line of
//! the same tile on the same connection, mirroring checkpoint order.

use snd_core::{parse_interval_line, parse_tile_line, parse_timing_line, TileGrid};

use crate::{clip, OrchestrateError};

/// Wire protocol version; bumped on any incompatible change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Longest line either side accepts: a tile line holds `pair_count`
/// 16-hex-digit words, so even huge tiles fit well under this; anything
/// longer is garbage and is rejected before it can exhaust memory.
pub const MAX_LINE_BYTES: usize = 4 << 20;

/// A message from a worker to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMsg {
    /// Handshake: protocol version, dataset fingerprint, snapshot count.
    Hello {
        /// Protocol version the worker speaks.
        version: u32,
        /// The worker's `shard_fingerprint` of its dataset + config.
        fingerprint: u64,
        /// Number of snapshots the worker loaded.
        k: usize,
    },
    /// Request for work.
    Next,
    /// A finished tile's values (verbatim checkpoint `T` line).
    Tile {
        /// Tile ID.
        id: usize,
        /// Values in grid pair order.
        values: Vec<f64>,
    },
    /// Certified `[lo, hi]` pairs for the preceding tile (`I` line).
    Interval {
        /// Tile ID.
        id: usize,
        /// Intervals in grid pair order.
        intervals: Vec<(f64, f64)>,
    },
    /// Observed compute seconds for the preceding tile (`W` line).
    Timing {
        /// Tile ID.
        id: usize,
        /// Wall seconds.
        secs: f64,
    },
    /// Clean disconnect.
    Bye,
}

/// A message from the coordinator to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinatorMsg {
    /// Handshake accepted: the grid and fingerprint this run computes.
    Grid {
        /// Snapshot count.
        k: usize,
        /// Tile edge length.
        tile: usize,
        /// Dataset fingerprint.
        fingerprint: u64,
    },
    /// A lease: compute these tiles and stream the results back.
    Lease {
        /// Lease ID (for diagnostics; tiles are the contract).
        lease: u64,
        /// Tile IDs, ascending.
        tiles: Vec<usize>,
    },
    /// Nothing leasable right now; ask again after this many millis.
    Wait(u64),
    /// The matrix is complete; disconnect.
    Done,
    /// Protocol violation or handshake rejection; connection closes.
    Err(String),
}

/// Serializes a worker message as one newline-terminated line.
pub fn worker_line(msg: &WorkerMsg) -> String {
    match msg {
        WorkerMsg::Hello {
            version,
            fingerprint,
            k,
        } => format!("HELLO {version} {fingerprint:016x} k {k}\n"),
        WorkerMsg::Next => "NEXT\n".into(),
        WorkerMsg::Tile { id, values } => {
            let mut out = String::new();
            snd_core::tile_line(&mut out, *id, values);
            out
        }
        WorkerMsg::Interval { id, intervals } => {
            let mut out = String::new();
            snd_core::interval_line(&mut out, *id, intervals);
            out
        }
        WorkerMsg::Timing { id, secs } => {
            let mut out = String::new();
            snd_core::timing_line(&mut out, *id, *secs);
            out
        }
        WorkerMsg::Bye => "BYE\n".into(),
    }
}

/// Serializes a coordinator message as one newline-terminated line.
pub fn coordinator_line(msg: &CoordinatorMsg) -> String {
    match msg {
        CoordinatorMsg::Grid {
            k,
            tile,
            fingerprint,
        } => format!("GRID k {k} tile {tile} fingerprint {fingerprint:016x}\n"),
        CoordinatorMsg::Lease { lease, tiles } => {
            let mut out = format!("LEASE {lease} {}", tiles.len());
            for t in tiles {
                out.push_str(&format!(" {t}"));
            }
            out.push('\n');
            out
        }
        CoordinatorMsg::Wait(ms) => format!("WAIT {ms}\n"),
        CoordinatorMsg::Done => "DONE\n".into(),
        // Newlines inside the message would smuggle in a second line.
        CoordinatorMsg::Err(m) => format!("ERR {}\n", m.replace('\n', " ")),
    }
}

fn violation(line: &str, reason: impl Into<String>) -> OrchestrateError {
    OrchestrateError::Protocol {
        line: clip(line),
        reason: reason.into(),
    }
}

/// Parses one worker line against the run's grid (`T`/`I`/`W` pair
/// counts and IDs are validated exactly as checkpoint loading does).
/// Malformed lines are structured errors, never panics.
pub fn parse_worker_msg(line: &str, grid: &TileGrid) -> Result<WorkerMsg, OrchestrateError> {
    match line.split_ascii_whitespace().next() {
        Some("HELLO") => {
            let mut t = line.split_ascii_whitespace().skip(1);
            let parsed = (|| {
                let version: u32 = t.next()?.parse().ok()?;
                let fingerprint = u64::from_str_radix(t.next()?, 16).ok()?;
                if t.next()? != "k" {
                    return None;
                }
                let k: usize = t.next()?.parse().ok()?;
                t.next().is_none().then_some(WorkerMsg::Hello {
                    version,
                    fingerprint,
                    k,
                })
            })();
            parsed.ok_or_else(|| violation(line, "bad HELLO (want: HELLO <ver> <fp-hex16> k <k>)"))
        }
        Some("NEXT") if line.trim_end() == "NEXT" => Ok(WorkerMsg::Next),
        Some("BYE") if line.trim_end() == "BYE" => Ok(WorkerMsg::Bye),
        Some("T") => parse_tile_line(line, grid)
            .map(|(id, values)| WorkerMsg::Tile { id, values })
            .ok_or_else(|| violation(line, "bad tile line (id/count/hex mismatch with grid)")),
        Some("I") => parse_interval_line(line, grid)
            .map(|(id, intervals)| WorkerMsg::Interval { id, intervals })
            .ok_or_else(|| violation(line, "bad interval line (id/count/hex mismatch with grid)")),
        Some("W") => parse_timing_line(line, grid)
            .map(|(id, secs)| WorkerMsg::Timing { id, secs })
            .ok_or_else(|| violation(line, "bad timing line (id/hex/finiteness)")),
        Some(other) => Err(violation(line, format!("unknown message {other:?}"))),
        None => Err(violation(line, "empty line")),
    }
}

/// Parses one coordinator line.
pub fn parse_coordinator_msg(line: &str) -> Result<CoordinatorMsg, OrchestrateError> {
    let trimmed = line.trim_end();
    match trimmed.split_ascii_whitespace().next() {
        Some("GRID") => {
            let mut t = trimmed.split_ascii_whitespace().skip(1);
            let parsed = (|| {
                if t.next()? != "k" {
                    return None;
                }
                let k: usize = t.next()?.parse().ok()?;
                if t.next()? != "tile" {
                    return None;
                }
                let tile: usize = t.next()?.parse().ok()?;
                if tile == 0 || t.next()? != "fingerprint" {
                    return None;
                }
                let fingerprint = u64::from_str_radix(t.next()?, 16).ok()?;
                t.next().is_none().then_some(CoordinatorMsg::Grid {
                    k,
                    tile,
                    fingerprint,
                })
            })();
            parsed.ok_or_else(|| {
                violation(
                    line,
                    "bad GRID (want: GRID k <k> tile <t> fingerprint <fp>)",
                )
            })
        }
        Some("LEASE") => {
            let mut t = trimmed.split_ascii_whitespace().skip(1);
            let parsed = (|| {
                let lease: u64 = t.next()?.parse().ok()?;
                let n: usize = t.next()?.parse().ok()?;
                let mut tiles = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    tiles.push(t.next()?.parse().ok()?);
                }
                t.next()
                    .is_none()
                    .then_some(CoordinatorMsg::Lease { lease, tiles })
            })();
            parsed.ok_or_else(|| violation(line, "bad LEASE (want: LEASE <id> <n> <tile>...)"))
        }
        Some("WAIT") => {
            let mut t = trimmed.split_ascii_whitespace().skip(1);
            let parsed = (|| {
                let ms: u64 = t.next()?.parse().ok()?;
                t.next().is_none().then_some(CoordinatorMsg::Wait(ms))
            })();
            parsed.ok_or_else(|| violation(line, "bad WAIT (want: WAIT <millis>)"))
        }
        Some("DONE") if trimmed == "DONE" => Ok(CoordinatorMsg::Done),
        Some("ERR") => Ok(CoordinatorMsg::Err(
            trimmed.strip_prefix("ERR").unwrap_or("").trim().to_string(),
        )),
        Some(other) => Err(violation(line, format!("unknown message {other:?}"))),
        None => Err(violation(line, "empty line")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> TileGrid {
        TileGrid::new(6, 2)
    }

    #[test]
    fn worker_messages_roundtrip() {
        let msgs = [
            WorkerMsg::Hello {
                version: 1,
                fingerprint: 0xdead_beef_0123_4567,
                k: 6,
            },
            WorkerMsg::Next,
            WorkerMsg::Tile {
                id: 1,
                values: vec![1.5, -0.25, f64::MAX, 3.0],
            },
            WorkerMsg::Interval {
                id: 1,
                intervals: vec![(1.0, 2.0), (0.0, 0.5), (1.0, 1.0), (2.0, 4.0)],
            },
            WorkerMsg::Timing { id: 1, secs: 0.125 },
            WorkerMsg::Bye,
        ];
        for msg in msgs {
            let line = worker_line(&msg);
            assert!(line.ends_with('\n'));
            let back = parse_worker_msg(line.trim_end(), &grid()).unwrap();
            assert_eq!(back, msg, "{line:?}");
        }
    }

    #[test]
    fn coordinator_messages_roundtrip() {
        let msgs = [
            CoordinatorMsg::Grid {
                k: 6,
                tile: 2,
                fingerprint: 42,
            },
            CoordinatorMsg::Lease {
                lease: 7,
                tiles: vec![0, 3, 5],
            },
            CoordinatorMsg::Lease {
                lease: 8,
                tiles: vec![],
            },
            CoordinatorMsg::Wait(250),
            CoordinatorMsg::Done,
            CoordinatorMsg::Err("fingerprint mismatch".into()),
        ];
        for msg in msgs {
            let line = coordinator_line(&msg);
            assert!(line.ends_with('\n'));
            let back = parse_coordinator_msg(&line).unwrap();
            assert_eq!(back, msg, "{line:?}");
        }
    }

    #[test]
    fn malformed_lines_are_structured_errors_not_panics() {
        let bad_worker = [
            "",
            "   ",
            "HELLO",
            "HELLO one 00 k 6",
            "HELLO 1 xyz k 6",
            "HELLO 1 00 k",
            "HELLO 1 00 k 6 extra",
            "NEXT please",
            "T",
            "T 999 1 0000000000000000", // id out of range
            "T 1 2 0000000000000000",   // count mismatch (tile 1 has 4 pairs)
            "T 1 4 0000000000000000 nonsense aaaaaaaaaaaaaaaa bbbbbbbbbbbbbbbb",
            "I 1 4 0000000000000000", // too few words
            "W 1 zzzz",
            "W 1 fff0000000000000", // -inf: non-finite timing
            "LEASE 1 1 0",          // coordinator verb on worker channel
        ];
        for line in bad_worker {
            match parse_worker_msg(line, &grid()) {
                Err(OrchestrateError::Protocol { reason, .. }) => {
                    assert!(!reason.is_empty(), "{line:?}")
                }
                other => panic!("{line:?} should be a protocol error, got {other:?}"),
            }
        }
        let bad_coord = [
            "",
            "GRID",
            "GRID k 6 tile 0 fingerprint 00", // zero tile
            "GRID k 6 tile 2 fingerprint xyz",
            "LEASE 1",
            "LEASE 1 2 0",   // promises 2 tiles, carries 1
            "LEASE 1 1 0 9", // trailing junk
            "WAIT",
            "WAIT soon",
            "DONE now",
            "T 0 1 0000000000000000", // worker verb on coordinator channel
        ];
        for line in bad_coord {
            match parse_coordinator_msg(line) {
                Err(OrchestrateError::Protocol { reason, .. }) => {
                    assert!(!reason.is_empty(), "{line:?}")
                }
                other => panic!("{line:?} should be a protocol error, got {other:?}"),
            }
        }
    }

    #[test]
    fn long_garbage_is_clipped_in_the_error() {
        let line = format!("T 0 1 {}", "a".repeat(500));
        let Err(OrchestrateError::Protocol { line: shown, .. }) = parse_worker_msg(&line, &grid())
        else {
            panic!("expected protocol error");
        };
        assert!(shown.len() < 120, "clipped: {}", shown.len());
    }
}
