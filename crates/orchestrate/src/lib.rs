//! Distributed shard orchestration: `snd orchestrate` / `snd work`.
//!
//! The sharded all-pairs path (see `snd_core::shard`) produces durable,
//! fingerprint-validated tile artifacts — but launching shards, picking a
//! grid, and merging were manual. This crate adds the coordinator that
//! turns those artifacts into "point N machines at a matrix and walk
//! away":
//!
//! * **[`Coordinator`]** owns the [`TileGrid`](snd_core::TileGrid) and
//!   the checkpoint file. It hands out *tile leases* to workers over a
//!   line-oriented protocol on TCP or Unix sockets ([`protocol`]),
//!   appends every accepted result to the checkpoint (which doubles as
//!   the output artifact), re-dispatches leases whose worker died (EOF)
//!   or stalled past the lease deadline, and dedups duplicate
//!   submissions first-result-wins — so the merged matrix is
//!   bit-identical to `pairwise_distances_seq` regardless of worker
//!   count, kill/restart timing, or duplicate results.
//! * **[`run_worker`]** connects to a coordinator, validates the dataset
//!   fingerprint, and streams each finished tile back while the next one
//!   computes (the socket drain overlaps the engine's compute; an
//!   end-of-lease blocking flush settles the remainder).
//! * **[`Autotuner`]** replaces the static `auto_tile` shape heuristic
//!   for orchestrated runs: observed per-tile wall times (persisted as
//!   `W` checkpoint lines, so reruns warm-start) drive lease composition
//!   — slow tiles ride alone, fast tiles coalesce, and fast workers get
//!   proportionally larger leases.
//!
//! Concurrency model: the coordinator is a *single-threaded* nonblocking
//! poll loop over `std::net` — no spawned threads, no async runtime.
//! Parallelism comes from worker *processes* (local children or remote
//! machines), each of which parallelizes inside tiles via the engine's
//! rayon pool. This keeps the `thread-spawn` lint trivially satisfied
//! and makes the coordinator steppable (`poll_once`) for deterministic
//! tests.

pub mod autotune;
pub mod coordinator;
pub mod net;
pub mod protocol;
pub mod worker;

pub use autotune::{orchestrate_tile, Autotuner};
pub use coordinator::{report_line, Coordinator, CoordinatorOpts, OrchestrateReport};
pub use net::Endpoint;
pub use protocol::{CoordinatorMsg, WorkerMsg, PROTOCOL_VERSION};
pub use worker::{run_worker, WorkerOpts, WorkerReport};

use std::fmt;

/// Errors from orchestration: socket IO, protocol violations, handshake
/// mismatches, and the shard layer underneath.
#[derive(Debug)]
pub enum OrchestrateError {
    /// Underlying socket or file IO failed.
    Io(std::io::Error),
    /// The shard layer (checkpoint, plan, merge) failed.
    Shard(snd_core::ShardError),
    /// A peer sent a line that does not parse as a protocol message.
    /// Carries the offending line (truncated) and what was wrong — the
    /// context the satellite task demands instead of a panic.
    Protocol {
        /// The offending line, truncated for display.
        line: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The peer speaks the protocol but describes a different run
    /// (wrong fingerprint, snapshot count, or protocol version).
    Handshake(String),
    /// A listen/connect address could not be understood or reached.
    Addr(String),
    /// The coordinator reported an error, or every worker died with the
    /// matrix still incomplete.
    Failed(String),
}

impl fmt::Display for OrchestrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestrateError::Io(e) => write!(f, "orchestrate IO: {e}"),
            OrchestrateError::Shard(e) => write!(f, "orchestrate shard layer: {e}"),
            OrchestrateError::Protocol { line, reason } => {
                write!(f, "protocol violation: {reason} in line {line:?}")
            }
            OrchestrateError::Handshake(m) => write!(f, "handshake rejected: {m}"),
            OrchestrateError::Addr(m) => write!(f, "bad address: {m}"),
            OrchestrateError::Failed(m) => write!(f, "orchestration failed: {m}"),
        }
    }
}

impl std::error::Error for OrchestrateError {}

impl From<std::io::Error> for OrchestrateError {
    fn from(e: std::io::Error) -> Self {
        OrchestrateError::Io(e)
    }
}

impl From<snd_core::ShardError> for OrchestrateError {
    fn from(e: snd_core::ShardError) -> Self {
        OrchestrateError::Shard(e)
    }
}

/// Truncates a wire line for inclusion in an error message.
pub(crate) fn clip(line: &str) -> String {
    const MAX: usize = 80;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let cut = line
            .char_indices()
            .take_while(|&(i, _)| i < MAX)
            .last()
            .map_or(0, |(i, c)| i + c.len_utf8());
        format!("{}…", &line[..cut])
    }
}
