//! TCP/Unix socket plumbing shared by coordinator and worker: one
//! [`Endpoint`] type both sides parse the same way, plus listener/stream
//! enums so the rest of the crate is transport-agnostic. `std::net` and
//! `std::os::unix::net` only — no async runtime.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::OrchestrateError;

/// A listen/connect address: a TCP socket address (`host:port`) or a
/// Unix socket path (anything containing a `/`). Tests and the CI smoke
/// use Unix paths — no port collisions; multi-machine runs use TCP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `host:port`, resolved by `std::net`.
    Tcp(String),
    /// Filesystem path of a Unix domain socket.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an address string: a `/` anywhere means a Unix socket
    /// path, otherwise it must look like `host:port`.
    pub fn parse(addr: &str) -> Result<Endpoint, OrchestrateError> {
        if addr.is_empty() {
            return Err(OrchestrateError::Addr("empty address".into()));
        }
        if addr.contains('/') {
            return Ok(Endpoint::Unix(PathBuf::from(addr)));
        }
        if addr
            .rsplit_once(':')
            .is_none_or(|(host, port)| host.is_empty() || port.parse::<u16>().is_err())
        {
            return Err(OrchestrateError::Addr(format!(
                "{addr:?} is neither host:port nor a /path to a unix socket"
            )));
        }
        Ok(Endpoint::Tcp(addr.to_string()))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "{a}"),
            Endpoint::Unix(p) => write!(f, "{}", p.display()),
        }
    }
}

/// A nonblocking listener over either transport. Owns (and on drop
/// removes) the socket file in the Unix case.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix listener plus the path to unlink on drop.
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds nonblocking. An existing Unix socket file at the path is
    /// replaced (a stale socket from a dead coordinator would otherwise
    /// wedge every restart).
    pub fn bind(ep: &Endpoint) -> Result<Listener, OrchestrateError> {
        match ep {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)
                    .map_err(|e| OrchestrateError::Addr(format!("bind {addr}: {e}")))?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)
                    .map_err(|e| OrchestrateError::Addr(format!("bind {}: {e}", path.display())))?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.clone()))
            }
        }
    }

    /// Accepts one pending connection, or `None` when nothing is
    /// waiting. Accepted streams start nonblocking.
    pub fn accept(&self) -> Result<Option<Stream>, OrchestrateError> {
        let stream = match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Stream::Tcp(s),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e.into()),
            },
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Stream::Unix(s),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e.into()),
            },
        };
        stream.set_nonblocking(true)?;
        Ok(Some(stream))
    }

    /// The bound address, with TCP's OS-assigned port resolved — what a
    /// coordinator prints for workers to connect to.
    pub fn local_addr(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map_or_else(|_| "<unknown>".into(), |a| a.to_string()),
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected stream over either transport.
pub enum Stream {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix stream.
    Unix(UnixStream),
}

impl Stream {
    /// Toggles nonblocking mode (both directions).
    pub fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nb),
            Stream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    /// Bounds blocking reads so a dead peer surfaces as an error instead
    /// of a hang.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Connects (blocking), retrying until `retry_for` elapses — workers
/// routinely start before the coordinator has bound its socket.
pub fn connect(ep: &Endpoint, retry_for: Duration) -> Result<Stream, OrchestrateError> {
    let deadline = Instant::now() + retry_for;
    loop {
        let attempt = match ep {
            Endpoint::Tcp(addr) => TcpStream::connect(addr).map(Stream::Tcp),
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
        };
        match attempt {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => {
                return Err(OrchestrateError::Addr(format!("connect {ep}: {e}")));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_distinguishes_transports() {
        assert_eq!(
            Endpoint::parse("/tmp/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("./rel/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("./rel/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:7001").unwrap(),
            Endpoint::Tcp("127.0.0.1:7001".into())
        );
        assert!(Endpoint::parse("").is_err());
        assert!(Endpoint::parse("no-port-here").is_err());
        assert!(Endpoint::parse("host:notaport").is_err());
    }

    #[test]
    fn unix_listener_replaces_stale_socket_and_unlinks_on_drop() {
        let path = std::env::temp_dir().join(format!("snd_orch_net_{}.sock", std::process::id()));
        let ep = Endpoint::Unix(path.clone());
        let first = Listener::bind(&ep).unwrap();
        drop(first);
        assert!(!path.exists(), "socket file unlinked on drop");
        // A stale file (simulated dead coordinator) does not wedge bind.
        std::fs::write(&path, b"stale").unwrap();
        let second = Listener::bind(&ep).unwrap();
        assert!(second.accept().unwrap().is_none(), "nonblocking accept");
        drop(second);
    }
}
