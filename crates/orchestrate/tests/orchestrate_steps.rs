//! Steppable coordinator tests: in-process fake workers speak the wire
//! protocol over real Unix/TCP sockets while the test drives
//! [`Coordinator::poll_once`] by hand — every ordering (duplicate
//! submission, silent straggler, protocol garbage, kill-and-resume) is
//! deterministic, no sleeps-and-hope.
#![cfg(unix)]

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use snd_core::{DistanceMatrix, ShardPlan, SndConfig, SndEngine, TileGrid, TileSet};
use snd_graph::generators::path_graph;
use snd_models::NetworkState;
use snd_orchestrate::protocol::{parse_coordinator_msg, worker_line};
use snd_orchestrate::{
    run_worker, Coordinator, CoordinatorMsg, CoordinatorOpts, Endpoint, WorkerMsg, WorkerOpts,
    PROTOCOL_VERSION,
};

fn states(k: usize) -> Vec<NetworkState> {
    (0..k)
        .map(|t| {
            let vals: Vec<i8> = (0..10).map(|u| ((u + t) % 3) as i8 - 1).collect();
            NetworkState::from_values(&vals)
        })
        .collect()
}

/// Fresh checkpoint + socket paths for one test (stale files removed).
fn scratch(name: &str) -> (PathBuf, Endpoint) {
    let dir = std::env::temp_dir();
    let ckpt = dir.join(format!("snd_orch_{name}_{}.ckpt", std::process::id()));
    let sock = dir.join(format!("snd_orch_{name}_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&sock);
    (ckpt, Endpoint::Unix(sock))
}

/// The worker's half of a lease: checkpoint-format `T`/`I`/`W` lines for
/// `ids`, straight from the engine.
fn tile_lines(
    engine: &SndEngine<'_>,
    states: &[NetworkState],
    grid: TileGrid,
    ids: &[usize],
) -> String {
    let plan = ShardPlan::explicit(grid, ids.to_vec()).expect("plan");
    let mut out = String::new();
    engine
        .pairwise_tiles_with(states, &plan, &mut |id, values, ivs, secs| {
            snd_core::tile_line(&mut out, id, values);
            if let Some(ivs) = ivs {
                snd_core::interval_line(&mut out, id, ivs);
            }
            snd_core::timing_line(&mut out, id, secs);
            Ok(())
        })
        .expect("tiles");
    out
}

fn assert_bit_identical(a: &DistanceMatrix, b: &DistanceMatrix) {
    assert_eq!(a.size(), b.size());
    for i in 0..a.size() {
        for j in 0..a.size() {
            assert_eq!(
                a.at(i, j).to_bits(),
                b.at(i, j).to_bits(),
                "entry ({i},{j}): {} vs {}",
                a.at(i, j),
                b.at(i, j)
            );
        }
    }
}

/// An in-process fake worker: a plain blocking-write / nonblocking-read
/// socket the test interleaves with `poll_once`.
struct Fake {
    stream: UnixStream,
    buf: Vec<u8>,
}

impl Fake {
    fn connect(addr: &str) -> Fake {
        let stream = UnixStream::connect(addr).expect("connect fake worker");
        stream.set_nonblocking(true).expect("nonblocking");
        Fake {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, text: &str) {
        self.stream.set_nonblocking(false).expect("blocking");
        self.stream.write_all(text.as_bytes()).expect("send");
        self.stream.set_nonblocking(true).expect("nonblocking");
    }

    fn try_line(&mut self) -> Option<String> {
        let nl = self.buf.iter().position(|&b| b == b'\n')?;
        let line: Vec<u8> = self.buf.drain(..=nl).collect();
        Some(String::from_utf8_lossy(&line[..nl]).into_owned())
    }

    /// Reads one coordinator message, stepping the poll loop as needed.
    fn read_msg(&mut self, coord: &mut Coordinator) -> CoordinatorMsg {
        let mut chunk = [0u8; 16 * 1024];
        for _ in 0..20_000 {
            if let Some(line) = self.try_line() {
                return parse_coordinator_msg(&line).expect("coordinator line");
            }
            coord.poll_once().expect("poll");
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("coordinator closed the connection"),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("fake worker read: {e}"),
            }
        }
        panic!("no reply from coordinator");
    }

    fn handshake(&mut self, coord: &mut Coordinator, fingerprint: u64, k: usize) {
        self.send(&worker_line(&WorkerMsg::Hello {
            version: PROTOCOL_VERSION,
            fingerprint,
            k,
        }));
        match self.read_msg(coord) {
            CoordinatorMsg::Grid {
                k: gk,
                fingerprint: fp,
                ..
            } => {
                assert_eq!(gk, k);
                assert_eq!(fp, fingerprint);
            }
            other => panic!("expected GRID, got {other:?}"),
        }
    }

    /// NEXT/LEASE loop until DONE; returns the number of leases served.
    fn serve_until_done(
        &mut self,
        coord: &mut Coordinator,
        engine: &SndEngine<'_>,
        states: &[NetworkState],
        grid: TileGrid,
    ) -> usize {
        let mut leases = 0;
        loop {
            self.send(&worker_line(&WorkerMsg::Next));
            match self.read_msg(coord) {
                CoordinatorMsg::Lease { tiles, .. } => {
                    self.send(&tile_lines(engine, states, grid, &tiles));
                    leases += 1;
                }
                CoordinatorMsg::Wait(_) => {}
                CoordinatorMsg::Done => {
                    self.send(&worker_line(&WorkerMsg::Bye));
                    return leases;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

#[test]
fn two_fake_workers_produce_the_sequential_matrix_bit_for_bit() {
    let g = path_graph(10);
    let engine = SndEngine::new(&g, SndConfig::default());
    let s = states(6);
    let grid = TileGrid::new(6, 2);
    let fp = engine.shard_fingerprint(&s);
    let (ckpt, ep) = scratch("two_fakes");
    let mut coord =
        Coordinator::new(&ep, &ckpt, grid, fp, CoordinatorOpts::default()).expect("coordinator");

    let mut fakes = [
        Fake::connect(&coord.local_addr()),
        Fake::connect(&coord.local_addr()),
    ];
    for f in &mut fakes {
        f.handshake(&mut coord, fp, 6);
    }
    // Interleave the two workers one message at a time until both are
    // told DONE — tiles land in whatever order the leases shake out.
    let mut done = [false, false];
    let mut leases = [0usize, 0usize];
    while done.iter().any(|d| !d) {
        for (w, f) in fakes.iter_mut().enumerate() {
            if done[w] {
                continue;
            }
            f.send(&worker_line(&WorkerMsg::Next));
            match f.read_msg(&mut coord) {
                CoordinatorMsg::Lease { tiles, .. } => {
                    f.send(&tile_lines(&engine, &s, grid, &tiles));
                    leases[w] += 1;
                }
                CoordinatorMsg::Wait(_) => {}
                CoordinatorMsg::Done => {
                    f.send(&worker_line(&WorkerMsg::Bye));
                    done[w] = true;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
    assert!(coord.is_complete());
    let report = coord.report();
    assert_eq!(report.workers, 2);
    assert_eq!(report.computed, grid.tile_count());
    assert_eq!(report.resumed, 0);
    assert!(
        leases[0] > 0 && leases[1] > 0,
        "both workers served: {leases:?}"
    );

    let reference = engine.pairwise_distances_seq(&s);
    let merged = coord.into_tiles().to_matrix().expect("whole matrix");
    assert_bit_identical(&merged, &reference);
    // The durable checkpoint holds the identical artifact.
    let reloaded = TileSet::load(&ckpt)
        .expect("reload")
        .to_matrix()
        .expect("matrix");
    assert_bit_identical(&reloaded, &reference);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn silent_straggler_lease_expires_and_is_redispatched() {
    let g = path_graph(10);
    let engine = SndEngine::new(&g, SndConfig::default());
    let s = states(6);
    let grid = TileGrid::new(6, 2);
    let fp = engine.shard_fingerprint(&s);
    let (ckpt, ep) = scratch("straggler");
    let opts = CoordinatorOpts {
        lease_timeout: Duration::from_millis(40),
        target_lease: Duration::from_millis(5),
        grace: Duration::from_millis(100),
    };
    let mut coord = Coordinator::new(&ep, &ckpt, grid, fp, opts).expect("coordinator");

    // Worker A takes a lease and goes silent (a hung process).
    let mut straggler = Fake::connect(&coord.local_addr());
    straggler.handshake(&mut coord, fp, 6);
    straggler.send(&worker_line(&WorkerMsg::Next));
    let CoordinatorMsg::Lease { tiles: stuck, .. } = straggler.read_msg(&mut coord) else {
        panic!("expected a lease");
    };
    assert!(!stuck.is_empty());

    // Past the deadline the lease returns to the pool.
    std::thread::sleep(Duration::from_millis(120));
    coord.poll_once().expect("poll");
    assert!(coord.report().redispatched >= stuck.len());

    // Worker B completes the whole grid, stuck tiles included.
    let mut healthy = Fake::connect(&coord.local_addr());
    healthy.handshake(&mut coord, fp, 6);
    healthy.serve_until_done(&mut coord, &engine, &s, grid);

    assert!(coord.is_complete());
    let reference = engine.pairwise_distances_seq(&s);
    let merged = coord.into_tiles().to_matrix().expect("whole matrix");
    assert_bit_identical(&merged, &reference);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn duplicate_results_keep_the_first_bits_and_certification_attribution() {
    let g = path_graph(10);
    let engine = SndEngine::new(&g, SndConfig::default());
    let s = states(6);
    let grid = TileGrid::new(6, 2);
    let fp = engine.shard_fingerprint(&s);
    let (ckpt, ep) = scratch("dupes");
    let mut coord =
        Coordinator::new(&ep, &ckpt, grid, fp, CoordinatorOpts::default()).expect("coordinator");
    let mut fake = Fake::connect(&coord.local_addr());
    fake.handshake(&mut coord, fp, 6);

    // Tile 0 submitted correctly, then a *corrupted* duplicate: the
    // first result must win and the poison copy be dropped on the floor.
    let honest = tile_lines(&engine, &s, grid, &[0]);
    fake.send(&honest);
    let mut poison = String::new();
    snd_core::tile_line(&mut poison, 0, &vec![42.0; grid.pair_count(0)]);
    fake.send(&poison);

    // Tile 1 arrives, then a duplicate, then an interval line: the
    // duplicate clears attribution, so the certification is dropped —
    // a losing worker can't certify the winner's values.
    let mut t1 = String::new();
    let plan = ShardPlan::explicit(grid, vec![1]).expect("plan");
    engine
        .pairwise_tiles_with(&s, &plan, &mut |id, values, _ivs, _secs| {
            snd_core::tile_line(&mut t1, id, values);
            Ok(())
        })
        .expect("tile 1");
    fake.send(&t1);
    fake.send(&t1);
    let mut stray_interval = String::new();
    snd_core::interval_line(
        &mut stray_interval,
        1,
        &vec![(0.0, 1.0); grid.pair_count(1)],
    );
    fake.send(&stray_interval);

    // Remaining tiles, then drain to DONE.
    let rest: Vec<usize> = (2..grid.tile_count()).collect();
    fake.send(&tile_lines(&engine, &s, grid, &rest));
    fake.serve_until_done(&mut coord, &engine, &s, grid);

    let report = coord.report();
    assert_eq!(report.duplicates, 2);
    assert_eq!(report.computed, grid.tile_count());
    let tiles = coord.into_tiles();
    assert!(!tiles.is_certified(1), "stray interval must not attach");
    let reference = engine.pairwise_distances_seq(&s);
    assert_bit_identical(&tiles.to_matrix().expect("matrix"), &reference);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn garbage_and_bad_handshakes_get_structured_errs_not_crashes() {
    let g = path_graph(10);
    let engine = SndEngine::new(&g, SndConfig::default());
    let s = states(6);
    let grid = TileGrid::new(6, 2);
    let fp = engine.shard_fingerprint(&s);
    let (ckpt, ep) = scratch("garbage");
    let mut coord =
        Coordinator::new(&ep, &ckpt, grid, fp, CoordinatorOpts::default()).expect("coordinator");

    // Wrong fingerprint: rejected with a message naming the mismatch.
    let mut wrong = Fake::connect(&coord.local_addr());
    wrong.send(&worker_line(&WorkerMsg::Hello {
        version: PROTOCOL_VERSION,
        fingerprint: fp ^ 1,
        k: 6,
    }));
    match wrong.read_msg(&mut coord) {
        CoordinatorMsg::Err(m) => assert!(m.contains("fingerprint"), "{m}"),
        other => panic!("expected ERR, got {other:?}"),
    }

    // Post-handshake garbage: ERR (with the offending line) and close.
    let mut garbled = Fake::connect(&coord.local_addr());
    garbled.handshake(&mut coord, fp, 6);
    garbled.send("LAUNCH missiles 42\n");
    match garbled.read_msg(&mut coord) {
        CoordinatorMsg::Err(m) => assert!(m.contains("LAUNCH"), "{m}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    assert_eq!(coord.report().rejected, 2);

    // The coordinator shrugs it off: a healthy worker still completes.
    let mut healthy = Fake::connect(&coord.local_addr());
    healthy.handshake(&mut coord, fp, 6);
    healthy.serve_until_done(&mut coord, &engine, &s, grid);
    assert!(coord.is_complete());
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn complete_checkpoint_resumes_to_immediate_done() {
    let g = path_graph(10);
    let engine = SndEngine::new(&g, SndConfig::default());
    let s = states(6);
    let grid = TileGrid::new(6, 2);
    let fp = engine.shard_fingerprint(&s);
    let (ckpt, ep) = scratch("resume_done");

    let full = engine.pairwise_tiles(&s, &ShardPlan::full(grid));
    full.save(&ckpt).expect("save");

    let mut coord =
        Coordinator::new(&ep, &ckpt, grid, fp, CoordinatorOpts::default()).expect("coordinator");
    assert!(coord.is_complete(), "resume honors a complete checkpoint");
    let mut fake = Fake::connect(&coord.local_addr());
    fake.handshake(&mut coord, fp, 6);
    fake.send(&worker_line(&WorkerMsg::Next));
    assert_eq!(fake.read_msg(&mut coord), CoordinatorMsg::Done);
    let report = coord.report();
    assert_eq!(report.resumed, grid.tile_count());
    assert_eq!(report.computed, 0);
    let reference = engine.pairwise_distances_seq(&s);
    assert_bit_identical(&coord.into_tiles().to_matrix().expect("matrix"), &reference);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn tcp_endpoint_handshakes_like_unix() {
    let g = path_graph(10);
    let engine = SndEngine::new(&g, SndConfig::default());
    let s = states(6);
    let grid = TileGrid::new(6, 2);
    let fp = engine.shard_fingerprint(&s);
    let ckpt = std::env::temp_dir().join(format!("snd_orch_tcp_{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let ep = Endpoint::parse("127.0.0.1:0").expect("endpoint");
    let mut coord =
        Coordinator::new(&ep, &ckpt, grid, fp, CoordinatorOpts::default()).expect("coordinator");
    let addr = coord.local_addr();
    assert!(addr.contains(':') && !addr.ends_with(":0"), "{addr}");

    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream.set_nonblocking(true).expect("nonblocking");
    let mut fake = FakeTcp {
        stream,
        buf: Vec::new(),
    };
    fake.send(&worker_line(&WorkerMsg::Hello {
        version: PROTOCOL_VERSION,
        fingerprint: fp,
        k: 6,
    }));
    match fake.read_msg(&mut coord) {
        CoordinatorMsg::Grid { k, .. } => assert_eq!(k, 6),
        other => panic!("expected GRID, got {other:?}"),
    }
    let _ = std::fs::remove_file(&ckpt);
}

/// TCP twin of [`Fake`] for the address-family smoke test.
struct FakeTcp {
    stream: std::net::TcpStream,
    buf: Vec<u8>,
}

impl FakeTcp {
    fn send(&mut self, text: &str) {
        self.stream.set_nonblocking(false).expect("blocking");
        self.stream.write_all(text.as_bytes()).expect("send");
        self.stream.set_nonblocking(true).expect("nonblocking");
    }

    fn read_msg(&mut self, coord: &mut Coordinator) -> CoordinatorMsg {
        let mut chunk = [0u8; 4096];
        for _ in 0..20_000 {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=nl).collect();
                let line = String::from_utf8_lossy(&line[..nl]).into_owned();
                return parse_coordinator_msg(&line).expect("coordinator line");
            }
            coord.poll_once().expect("poll");
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("coordinator closed the connection"),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("read: {e}"),
            }
        }
        panic!("no reply from coordinator");
    }
}

#[test]
fn real_worker_loop_completes_against_a_live_coordinator() {
    let g = path_graph(10);
    let engine = SndEngine::new(&g, SndConfig::default());
    let s = states(6);
    let grid = TileGrid::new(6, 2);
    let fp = engine.shard_fingerprint(&s);
    let (ckpt, ep) = scratch("real_worker");
    let opts = CoordinatorOpts {
        grace: Duration::from_secs(5),
        ..CoordinatorOpts::default()
    };
    let mut coord = Coordinator::new(&ep, &ckpt, grid, fp, opts).expect("coordinator");
    let addr = coord.local_addr();

    // The library's coordinator is thread-free; the *test* needs a second
    // thread to stand in for a worker process driving the blocking loop.
    // lint:allow(thread-spawn) test harness stands in for a separate worker process
    let worker = std::thread::spawn(move || {
        let g = path_graph(10);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states(6);
        run_worker(
            &engine,
            &s,
            &addr,
            &WorkerOpts {
                overlap: true,
                connect_retry: Duration::from_secs(5),
                read_timeout: Duration::from_secs(30),
                throttle: Duration::ZERO,
            },
        )
    });

    let report = coord.run().expect("orchestrated run");
    let worker_report = worker.join().expect("worker thread").expect("worker run");
    assert_eq!(report.computed, grid.tile_count());
    assert_eq!(worker_report.tiles, grid.tile_count());
    assert!(worker_report.leases >= 1);

    let reference = engine.pairwise_distances_seq(&s);
    assert_bit_identical(&coord.into_tiles().to_matrix().expect("matrix"), &reference);
    let _ = std::fs::remove_file(&ckpt);
}
