//! # snd — Social Network Distance
//!
//! A production-quality Rust implementation of *"A Distance Measure for the
//! Analysis of Polar Opinion Dynamics in Social Networks"* (Amelkin, Singh,
//! Bogdanov — ICDE 2017): the SND distance between snapshots of a social
//! network with competing (+/−) opinions, its EMD\* transport core with
//! local bank bins, exact linear-time-in-`n` computation, and the paper's
//! full evaluation harness (anomaly detection, opinion prediction, model
//! sensitivity, scalability).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — CSR graphs, generators, shortest paths, clustering;
//! * [`transport`] — exact transportation-problem solvers;
//! * [`emd`] — the EMD family (classic, ÊMD, EMDα, EMD\*);
//! * [`models`] — network states and opinion-dynamics ground costs;
//! * [`core`] — the [`SndEngine`](core::SndEngine) itself;
//! * [`baselines`] — competitor distances and predictors;
//! * [`analysis`] — anomaly detection, ROC, prediction harness;
//! * [`data`] — synthetic and simulated-Twitter workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use snd::core::{SndConfig, SndEngine};
//! use snd::graph::generators::path_graph;
//! use snd::models::NetworkState;
//!
//! let graph = path_graph(8);
//! let engine = SndEngine::new(&graph, SndConfig::default());
//! let before = NetworkState::from_values(&[1, 1, 0, 0, 0, 0, -1, -1]);
//! let after = NetworkState::from_values(&[1, 1, 1, 0, 0, -1, -1, -1]);
//! let d = engine.distance(&before, &after);
//! assert!(d > 0.0);
//! ```

pub use snd_analysis as analysis;
pub use snd_baselines as baselines;
pub use snd_core as core;
pub use snd_data as data;
pub use snd_emd as emd;
pub use snd_graph as graph;
pub use snd_models as models;
pub use snd_transport as transport;
