//! # snd — Social Network Distance
//!
//! A production-quality Rust implementation of *"A Distance Measure for the
//! Analysis of Polar Opinion Dynamics in Social Networks"* (Amelkin, Singh,
//! Bogdanov — ICDE 2017): the SND distance between snapshots of a social
//! network with competing (+/−) opinions, its EMD\* transport core with
//! local bank bins, exact linear-time-in-`n` computation, and the paper's
//! full evaluation harness (anomaly detection, opinion prediction, model
//! sensitivity, scalability).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — CSR graphs, generators, shortest paths, clustering;
//! * [`transport`] — exact transportation-problem solvers;
//! * [`emd`] — the EMD family (classic, ÊMD, EMDα, EMD\*);
//! * [`models`] — network states and opinion-dynamics ground costs;
//! * [`core`] — the [`SndEngine`](core::SndEngine) itself;
//! * [`baselines`] — competitor distances and predictors;
//! * [`analysis`] — anomaly detection, ROC, prediction harness;
//! * [`orchestrate`] — distributed tile leasing: coordinator, workers,
//!   wire protocol, lease autotuner;
//! * [`data`] — synthetic and simulated-Twitter workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use snd::core::{SndConfig, SndEngine};
//! use snd::graph::generators::path_graph;
//! use snd::models::NetworkState;
//!
//! let graph = path_graph(8);
//! let engine = SndEngine::new(&graph, SndConfig::default());
//! let before = NetworkState::from_values(&[1, 1, 0, 0, 0, 0, -1, -1]);
//! let after = NetworkState::from_values(&[1, 1, 1, 0, 0, -1, -1, -1]);
//! let d = engine.distance(&before, &after);
//! assert!(d > 0.0);
//! ```
//!
//! ## Simulating opinion dynamics
//!
//! Evaluation series come from forward simulation, and every simulator is
//! an implementation of
//! [`OpinionDynamics`](models::OpinionDynamics) — the paper's
//! probabilistic voting, the ICC/LTC cascades and random activation, plus
//! majority rule, stubborn voters, thresholded DeGroot/Friedkin–Johnsen
//! and bounded confidence from the wider literature (all in
//! [`models::process`]). The scenario registry
//! ([`data::scenario`]) composes a graph generator, a seeding, a model,
//! and an anomaly-injection schedule into named reproducible specs:
//!
//! ```
//! use snd::data::find_scenario;
//!
//! let mut scenario = find_scenario("bounded-confidence").expect("registered");
//! scenario.nodes = 300;
//! scenario.steps = 6;
//! let series = scenario.run(42).expect("valid registry parameters");
//! assert_eq!(series.states.len(), 7);
//! assert_eq!(series.labels.len(), 6); // anomaly ground truth
//! ```
//!
//! The same registry backs `snd simulate --scenario NAME --out data.json`,
//! whose output feeds every other `snd` subcommand.
//!
//! ## Batch evaluation
//!
//! The evaluation workloads that dominate in practice are *all-pairs*
//! regimes: anomaly detection over a snapshot series, clustering and
//! nearest-neighbor search over a snapshot set. Evaluated one
//! [`distance`](core::SndEngine::distance) at a time they redo the same
//! per-state work `T − 1` times. The batch entry points restructure this:
//!
//! * [`SndEngine::pairwise_distances`](core::SndEngine::pairwise_distances)
//!   — full `T × T` [`DistanceMatrix`](core::DistanceMatrix): ground
//!   geometry computed once per state, every `(ground state, opinion,
//!   direction, node)` SSSP row computed at most once into a shared
//!   [`RowCache`](core::RowCache), and all `4·T·(T−1)/2` EMD\* terms
//!   fanned out over the thread pool.
//! * [`SndEngine::series_distances`](core::SndEngine::series_distances) —
//!   the adjacent-pair series, evaluated **delta-aware**
//!   ([`core::delta`]): edge costs re-derived only on the edges a
//!   transition's [`StateDelta`](models::StateDelta) touched, cluster
//!   geometry SSSP rows *repaired* ([`graph::repair_row`]) instead of
//!   recomputed, identical snapshots short-circuited to zero, with an
//!   automatic fresh-rebuild fallback on high-churn transitions — exact
//!   (bit-identical to the sequential reference) in every regime, and at
//!   most two geometry bundles live at a time.
//! * [`CandidateEvaluator::price_candidates`](core::CandidateEvaluator::price_candidates)
//!   — a batch of flip-list candidates priced in parallel against one
//!   anchored delta geometry (the opinion-prediction search loop and the
//!   [`analysis::intervene`] planner), bit-identical to the scratch
//!   [`OrderedSnd`](core::OrderedSnd) reference.
//!
//! ```
//! use snd::core::{SndConfig, SndEngine};
//! use snd::graph::generators::path_graph;
//! use snd::models::NetworkState;
//!
//! let graph = path_graph(8);
//! let engine = SndEngine::new(&graph, SndConfig::default());
//! let snapshots = vec![
//!     NetworkState::from_values(&[1, 0, 0, 0, 0, 0, 0, 0]),
//!     NetworkState::from_values(&[1, 1, 0, 0, 0, 0, 0, -1]),
//!     NetworkState::from_values(&[1, 1, 1, 0, 0, 0, -1, -1]),
//! ];
//! let matrix = engine.pairwise_distances(&snapshots);
//! assert_eq!(matrix.size(), 3);
//! assert_eq!(matrix.at(0, 2), matrix.at(2, 0)); // symmetric
//! assert_eq!(matrix.adjacent().len(), 2); // the series, for free
//! ```
//!
//! ## Sharded evaluation with checkpoint/resume
//!
//! The all-pairs matrix is embarrassingly block-parallel, and
//! [`core::shard`] scales it past one machine: a
//! [`TileGrid`](core::TileGrid) decomposes the upper triangle into
//! deterministic tiles, a [`ShardPlan`](core::ShardPlan) names the tiles
//! one worker computes
//! ([`pairwise_tiles`](core::SndEngine::pairwise_tiles)), each finished
//! tile streams to a checkpoint file
//! ([`pairwise_tiles_checkpointed`](core::SndEngine::pairwise_tiles_checkpointed))
//! so interrupted runs resume without recomputation, and
//! [`TileSet::merge`](core::TileSet::merge) reassembles the shards'
//! partial artifacts into the full matrix with overlap/hole validation —
//! bit-identical to the sequential loop (`tests/shard_matrix.rs`). The
//! `snd shard` CLI subcommand drives the same workflow from the command
//! line, and [`analysis::resume`] offers checkpoint-backed
//! pairwise/series entry points.
//!
//! For multi-process runs, [`orchestrate`] turns the same tile grid into
//! a coordinator/worker system: `snd orchestrate` owns the grid and
//! hands out tile *leases* over TCP or Unix sockets, `snd work`
//! processes compute leased tiles and stream back verbatim checkpoint
//! lines, expired leases are re-dispatched (first result wins), and
//! per-tile `W` timings drive a measurement-based lease autotuner. The
//! merged matrix stays bit-identical to the sequential loop regardless
//! of worker count or failure timing (`BENCH_orchestrate.json` records
//! the worker-count curve and streaming-overlap ablation).
//!
//! ## Threading model
//!
//! [`SndEngine`](core::SndEngine) is immutable after construction and
//! `Sync`: **share one engine by reference across threads** rather than
//! building one per thread (construction computes the bank clustering).
//! Parallelism is otherwise internal — the batch calls above saturate the
//! machine on their own, and even a single
//! [`breakdown`](core::SndEngine::breakdown) computes its four Eq. 3 terms
//! concurrently. Parallel results are **bit-identical** to sequential
//! evaluation (`*_seq` reference paths exist on the engine, and
//! `tests/batch_parallel.rs` asserts equality property-style): terms are
//! independent exact integer solves reduced in a fixed order, and cached
//! SSSP rows hold exactly what recomputation would produce.
//!
//! Per-thread SSSP scratch buffers
//! ([`SsspScratch`](graph::SsspScratch)) make row computation
//! allocation-free after warmup; the measured effect of caching + fan-out
//! on the 32-snapshot × 10k-node all-pairs workload is recorded in
//! `BENCH_pairwise.json` at the repo root (regenerate with
//! `cargo bench -p snd-bench --bench pairwise_matrix`).

pub use snd_analysis as analysis;
pub use snd_baselines as baselines;
pub use snd_core as core;
pub use snd_data as data;
pub use snd_emd as emd;
pub use snd_graph as graph;
pub use snd_models as models;
pub use snd_orchestrate as orchestrate;
pub use snd_transport as transport;
